package nn

import (
	"math"
	"math/rand"
	"testing"

	"nbhd/internal/tensor"
)

// numericalGrad estimates d(loss)/d(data[i]) by central differences for a
// scalar-valued function of the network output.
func numericalGrad(data []float32, i int, eps float32, eval func() float64) float64 {
	orig := data[i]
	data[i] = orig + eps
	lp := eval()
	data[i] = orig - eps
	lm := eval()
	data[i] = orig
	return (lp - lm) / (2 * float64(eps))
}

// checkLayerGradients verifies a layer's analytic input and parameter
// gradients against central differences using an MSE loss to a random
// target.
func checkLayerGradients(t *testing.T, layer Layer, input *tensor.Tensor, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	out, err := layer.Forward(input, true)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	target := tensor.MustNew(out.Shape...)
	target.UniformInit(1, rng)

	eval := func() float64 {
		o, err := layer.Forward(input, true)
		if err != nil {
			t.Fatalf("forward in eval: %v", err)
		}
		loss, _, err := MSE(o, target, nil)
		if err != nil {
			t.Fatalf("mse: %v", err)
		}
		return loss
	}

	// Analytic pass.
	out, err = layer.Forward(input, true)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	_, lossGrad, err := MSE(out, target, nil)
	if err != nil {
		t.Fatalf("mse: %v", err)
	}
	for _, p := range layer.Params() {
		p.Grad.Zero()
	}
	gradIn, err := layer.Backward(lossGrad)
	if err != nil {
		t.Fatalf("backward: %v", err)
	}

	const eps = 1e-2
	const tol = 2e-2
	compare := func(name string, analytic float64, data []float32, i int) {
		numeric := numericalGrad(data, i, eps, eval)
		diff := math.Abs(analytic - numeric)
		scale := math.Max(math.Abs(analytic)+math.Abs(numeric), 1e-4)
		if diff/scale > tol && diff > 1e-4 {
			t.Errorf("%s[%d]: analytic %g vs numeric %g", name, i, analytic, numeric)
		}
	}
	// Sample a handful of input coordinates.
	for trial := 0; trial < 8; trial++ {
		i := rng.Intn(len(input.Data))
		compare("input", float64(gradIn.Data[i]), input.Data, i)
	}
	// And a handful of each parameter's coordinates.
	for _, p := range layer.Params() {
		for trial := 0; trial < 8; trial++ {
			i := rng.Intn(len(p.Value.Data))
			compare(p.Name, float64(p.Grad.Data[i]), p.Value.Data, i)
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conv, err := NewConv2D(2, 3, 3, 1, 1, rng)
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	input := tensor.MustNew(2, 2, 5, 5)
	input.UniformInit(1, rng)
	checkLayerGradients(t, conv, input, 2)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv, err := NewConv2D(1, 2, 3, 2, 1, rng)
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	input := tensor.MustNew(1, 1, 7, 7)
	input.UniformInit(1, rng)
	checkLayerGradients(t, conv, input, 4)
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lin, err := NewLinear(6, 4, rng)
	if err != nil {
		t.Fatalf("NewLinear: %v", err)
	}
	input := tensor.MustNew(3, 6)
	input.UniformInit(1, rng)
	checkLayerGradients(t, lin, input, 6)
}

func TestLeakyReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	relu, err := NewLeakyReLU(0.1)
	if err != nil {
		t.Fatalf("NewLeakyReLU: %v", err)
	}
	input := tensor.MustNew(2, 3, 4, 4)
	input.UniformInit(1, rng)
	// Nudge values away from the kink at 0 where numerical gradients lie.
	for i, v := range input.Data {
		if v > -0.05 && v < 0.05 {
			input.Data[i] = 0.1
		}
	}
	checkLayerGradients(t, relu, input, 8)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pool, err := NewMaxPool2D(2, 0)
	if err != nil {
		t.Fatalf("NewMaxPool2D: %v", err)
	}
	input := tensor.MustNew(1, 2, 6, 6)
	input.UniformInit(1, rng)
	checkLayerGradients(t, pool, input, 10)
}

func TestConv2DOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	conv, err := NewConv2D(3, 8, 3, 1, 1, rng)
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	x := tensor.MustNew(2, 3, 16, 16)
	out, err := conv.Forward(x, false)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	want := []int{2, 8, 16, 16}
	for i, d := range want {
		if out.Shape[i] != d {
			t.Fatalf("output shape %v, want %v", out.Shape, want)
		}
	}
	if conv.OutSize(16) != 16 {
		t.Errorf("OutSize(16) = %d", conv.OutSize(16))
	}
}

func TestConv2DValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	if _, err := NewConv2D(0, 4, 3, 1, 1, rng); err == nil {
		t.Error("zero in-channels accepted")
	}
	if _, err := NewConv2D(3, 4, 0, 1, 1, rng); err == nil {
		t.Error("zero kernel accepted")
	}
	if _, err := NewConv2D(3, 4, 3, 0, 1, rng); err == nil {
		t.Error("zero stride accepted")
	}
	conv, err := NewConv2D(3, 4, 3, 1, 1, rng)
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	bad := tensor.MustNew(1, 2, 8, 8) // wrong channel count
	if _, err := conv.Forward(bad, false); err == nil {
		t.Error("wrong channel count accepted")
	}
	if _, err := conv.Backward(tensor.MustNew(1, 4, 8, 8)); err == nil {
		t.Error("backward before forward accepted")
	}
}

func TestMaxPoolHalvesSize(t *testing.T) {
	pool, err := NewMaxPool2D(2, 0)
	if err != nil {
		t.Fatalf("NewMaxPool2D: %v", err)
	}
	x, _ := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out, err := pool.Forward(x, false)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Shape[2] != 2 || out.Shape[3] != 2 {
		t.Fatalf("pooled shape %v", out.Shape)
	}
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("pooled[%d] = %f, want %f", i, out.Data[i], w)
		}
	}
}

func TestSequentialForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	conv, err := NewConv2D(1, 4, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	relu, err := NewLeakyReLU(0.1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool2D(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	net := NewSequential(conv, relu, pool)
	if net.ParamCount() == 0 {
		t.Error("ParamCount = 0")
	}
	x := tensor.MustNew(2, 1, 8, 8)
	x.UniformInit(1, rng)
	out, err := net.Forward(x, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Shape[1] != 4 || out.Shape[2] != 4 {
		t.Fatalf("net output shape %v", out.Shape)
	}
	grad := tensor.MustNew(out.Shape...)
	grad.Fill(1)
	net.ZeroGrads()
	gin, err := net.Backward(grad)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	if !gin.SameShape(x) {
		t.Errorf("input grad shape %v", gin.Shape)
	}
	// Parameter gradients populated.
	var nonzero bool
	for _, p := range net.Params() {
		if p.Grad.L2Norm() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("all parameter gradients are zero")
	}
}

func TestBCEWithLogits(t *testing.T) {
	logits, _ := tensor.FromSlice([]float32{0, 2, -2}, 3)
	targets, _ := tensor.FromSlice([]float32{0, 1, 0}, 3)
	loss, grad, err := BCEWithLogits(logits, targets, nil)
	if err != nil {
		t.Fatalf("BCE: %v", err)
	}
	// Hand-computed: ln2 for z=0,t=0; softplus(-2) for z=2,t=1;
	// softplus(-2) for z=-2,t=0.
	want := (math.Log(2) + math.Log1p(math.Exp(-2))*2) / 3
	if math.Abs(loss-want) > 1e-6 {
		t.Errorf("loss = %f, want %f", loss, want)
	}
	// Gradient: (sigmoid(z)-t)/n.
	if g := grad.Data[0]; math.Abs(float64(g)-0.5/3) > 1e-6 {
		t.Errorf("grad[0] = %f", g)
	}
	// Mismatched shapes rejected.
	bad := tensor.MustNew(2)
	if _, _, err := BCEWithLogits(logits, bad, nil); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, _, err := BCEWithLogits(logits, targets, bad); err == nil {
		t.Error("weight shape mismatch accepted")
	}
}

func TestBCEGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	logits := tensor.MustNew(6)
	logits.UniformInit(2, rng)
	targets, _ := tensor.FromSlice([]float32{1, 0, 1, 0, 1, 0}, 6)
	_, grad, err := BCEWithLogits(logits, targets, nil)
	if err != nil {
		t.Fatalf("BCE: %v", err)
	}
	for i := range logits.Data {
		numeric := numericalGrad(logits.Data, i, 1e-3, func() float64 {
			l, _, err := BCEWithLogits(logits, targets, nil)
			if err != nil {
				t.Fatalf("BCE: %v", err)
			}
			return l
		})
		if math.Abs(numeric-float64(grad.Data[i])) > 1e-3 {
			t.Errorf("bce grad[%d]: analytic %f vs numeric %f", i, grad.Data[i], numeric)
		}
	}
}

func TestMSE(t *testing.T) {
	pred, _ := tensor.FromSlice([]float32{1, 2}, 2)
	target, _ := tensor.FromSlice([]float32{0, 4}, 2)
	loss, grad, err := MSE(pred, target, nil)
	if err != nil {
		t.Fatalf("MSE: %v", err)
	}
	if math.Abs(loss-(1+4)/2.0) > 1e-6 {
		t.Errorf("loss = %f", loss)
	}
	if math.Abs(float64(grad.Data[0])-1) > 1e-6 || math.Abs(float64(grad.Data[1])+2) > 1e-6 {
		t.Errorf("grad = %v", grad.Data)
	}
	// Weighted: zero weight removes an element's contribution.
	w, _ := tensor.FromSlice([]float32{1, 0}, 2)
	loss, grad, err = MSE(pred, target, w)
	if err != nil {
		t.Fatalf("MSE: %v", err)
	}
	if math.Abs(loss-0.5) > 1e-6 {
		t.Errorf("weighted loss = %f", loss)
	}
	if grad.Data[1] != 0 {
		t.Errorf("weighted grad[1] = %f", grad.Data[1])
	}
}

func TestSigmoid(t *testing.T) {
	x, _ := tensor.FromSlice([]float32{0, 100, -100}, 3)
	s := Sigmoid(x)
	if math.Abs(float64(s.Data[0])-0.5) > 1e-6 {
		t.Errorf("sigmoid(0) = %f", s.Data[0])
	}
	if s.Data[1] < 0.999 || s.Data[2] > 0.001 {
		t.Errorf("sigmoid saturation wrong: %v", s.Data)
	}
}

func TestSGDStep(t *testing.T) {
	opt, err := NewSGD(0.1, 0, 0)
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	p, err := newParam("w", 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Value.Fill(1)
	p.Grad.Fill(2)
	if err := opt.Step([]*Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if math.Abs(float64(p.Value.Data[0])-0.8) > 1e-6 {
		t.Errorf("after step = %f, want 0.8", p.Value.Data[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	opt, err := NewSGD(0.1, 0.9, 0)
	if err != nil {
		t.Fatalf("NewSGD: %v", err)
	}
	p, err := newParam("w", 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Grad.Fill(1)
	if err := opt.Step([]*Param{p}); err != nil {
		t.Fatal(err)
	}
	first := p.Value.Data[0]
	if err := opt.Step([]*Param{p}); err != nil {
		t.Fatal(err)
	}
	second := p.Value.Data[0] - first
	// Second step moves farther due to momentum: -0.1 then -0.19.
	if math.Abs(float64(first)+0.1) > 1e-6 {
		t.Errorf("first step = %f", first)
	}
	if math.Abs(float64(second)+0.19) > 1e-6 {
		t.Errorf("second delta = %f", second)
	}
}

func TestSGDValidation(t *testing.T) {
	if _, err := NewSGD(0, 0, 0); err == nil {
		t.Error("zero lr accepted")
	}
	if _, err := NewSGD(0.1, 1, 0); err == nil {
		t.Error("momentum 1 accepted")
	}
	if _, err := NewSGD(0.1, 0, -1); err == nil {
		t.Error("negative weight decay accepted")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 with Adam; expect w -> 3.
	opt, err := NewAdam(0.1, 0, 0, 0)
	if err != nil {
		t.Fatalf("NewAdam: %v", err)
	}
	p, err := newParam("w", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
		if err := opt.Step([]*Param{p}); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(float64(p.Value.Data[0])-3) > 0.05 {
		t.Errorf("adam converged to %f, want 3", p.Value.Data[0])
	}
}

func TestAdamValidation(t *testing.T) {
	if _, err := NewAdam(0, 0, 0, 0); err == nil {
		t.Error("zero lr accepted")
	}
	if _, err := NewAdam(0.1, -0.5, 0, 0); err == nil {
		t.Error("negative beta accepted")
	}
}

func TestClipGradNorm(t *testing.T) {
	p, err := newParam("w", 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4 // norm 5
	norm, err := ClipGradNorm([]*Param{p}, 1)
	if err != nil {
		t.Fatalf("ClipGradNorm: %v", err)
	}
	if math.Abs(norm-5) > 1e-6 {
		t.Errorf("pre-clip norm = %f", norm)
	}
	if after := p.Grad.L2Norm(); math.Abs(after-1) > 1e-5 {
		t.Errorf("post-clip norm = %f", after)
	}
	// Below threshold: untouched.
	norm, err = ClipGradNorm([]*Param{p}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Errorf("second norm = %f", norm)
	}
	if _, err := ClipGradNorm(nil, 0); err == nil {
		t.Error("zero max norm accepted")
	}
}

func TestTrainTinyNetworkReducesLoss(t *testing.T) {
	// A 2-layer conv net should fit a fixed random target: loss must
	// drop substantially over a few hundred steps.
	rng := rand.New(rand.NewSource(15))
	conv1, err := NewConv2D(1, 4, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	relu, err := NewLeakyReLU(0.1)
	if err != nil {
		t.Fatal(err)
	}
	conv2, err := NewConv2D(4, 1, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewSequential(conv1, relu, conv2)
	opt, err := NewAdam(0.01, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(1, 1, 8, 8)
	x.UniformInit(1, rng)
	target := tensor.MustNew(1, 1, 8, 8)
	target.UniformInit(0.5, rng)

	var first, last float64
	for step := 0; step < 200; step++ {
		out, err := net.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		loss, grad, err := MSE(out, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		net.ZeroGrads()
		if _, err := net.Backward(grad); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(net.Params()); err != nil {
			t.Fatal(err)
		}
	}
	if last > first*0.2 {
		t.Errorf("training did not reduce loss: %f -> %f", first, last)
	}
}

func TestDropoutValidation(t *testing.T) {
	if _, err := NewDropout(-0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewDropout(1, 1); err == nil {
		t.Error("rate 1 accepted")
	}
}

func TestDropoutInferencePassThrough(t *testing.T) {
	d, err := NewDropout(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(100)
	x.Fill(1)
	out, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v != 1 {
			t.Fatalf("inference dropout changed element %d to %f", i, v)
		}
	}
	// Backward after inference forward is identity.
	g := tensor.MustNew(100)
	g.Fill(2)
	back, err := d.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Data[0] != 2 {
		t.Error("inference backward not identity")
	}
}

func TestDropoutTrainingMasksAndScales(t *testing.T) {
	d, err := NewDropout(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(2000)
	x.Fill(1)
	out, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros, scaled := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected activation %f", v)
		}
	}
	if zeros < 800 || zeros > 1200 {
		t.Errorf("zeros = %d of 2000 at rate 0.5", zeros)
	}
	// Expected activation preserved: mean stays near 1.
	mean := float64(scaled) * 2 / 2000
	if math.Abs(mean-1) > 0.1 {
		t.Errorf("post-dropout mean = %f", mean)
	}
	// Backward zeroes the same coordinates.
	g := tensor.MustNew(2000)
	g.Fill(1)
	back, err := d.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
}

func TestDropoutGradCheck(t *testing.T) {
	// With the mask frozen (same rng state via re-seeding per eval not
	// possible), validate the chain rule by composing: forward once,
	// then check that backward equals elementwise mask*scale.
	d, err := NewDropout(0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(50)
	rng := rand.New(rand.NewSource(4))
	x.UniformInit(1, rng)
	out, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	g := tensor.MustNew(50)
	g.Fill(1)
	back, err := d.Backward(g)
	if err != nil {
		t.Fatal(err)
	}
	scale := float32(1 / 0.7)
	for i := range out.Data {
		want := float32(0)
		if out.Data[i] != 0 || x.Data[i] == 0 {
			if out.Data[i] != 0 {
				want = scale
			}
		}
		if math.Abs(float64(back.Data[i]-want)) > 1e-6 {
			t.Fatalf("grad[%d] = %f, want %f", i, back.Data[i], want)
		}
	}
}

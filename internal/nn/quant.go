package nn

import (
	"fmt"

	"nbhd/internal/tensor"
)

// Quantized inference: a w8a8 dynamic scheme. Weights are quantized once
// per tensor (PrepareQuantized, after training or loading); activations
// are quantized per batch with a scale computed on the fly, multiplied
// through an exact-int32 int8 GEMM, and come back to float32 before the
// next layer — so shape-only layers (pooling, activations) run their
// normal f32 path unchanged and need no quantized variant. Biases stay
// f32 and are added after dequantization. This is NOT bit-identical to
// the f32 path; the accuracy envelope is pinned by the experiment-level
// epsilon harness (see docs/QUANTIZATION.md).

// QuantizedLayer is implemented by layers that own weights and offer an
// int8 inference path.
type QuantizedLayer interface {
	// PrepareQuantized (re)quantizes the layer's weights. Call after
	// training or weight loading, before the first InferQuantized; it
	// mutates the layer and must not race with inference.
	PrepareQuantized() error
	// InferQuantized is the int8 counterpart of Layer.Infer: stateless,
	// concurrency-safe once prepared, output from the shared scratch pool.
	InferQuantized(x *tensor.Tensor) (*tensor.Tensor, error)
}

// PrepareQuantized quantizes the weights of every layer that supports
// int8 inference. Must be called before InferQuantized and after any
// weight update; it must not race with concurrent inference.
func (s *Sequential) PrepareQuantized() error {
	for i, l := range s.Layers {
		if ql, ok := l.(QuantizedLayer); ok {
			if err := ql.PrepareQuantized(); err != nil {
				return fmt.Errorf("nn: layer %d prepare quantized: %w", i, err)
			}
		}
	}
	return nil
}

// InferQuantized runs the network like Infer, but routes every layer
// with an int8 path through it (others keep their f32 Infer). The same
// recycling and concurrency contract as Infer applies. PrepareQuantized
// must have been called after the last weight change.
func (s *Sequential) InferQuantized(x *tensor.Tensor) (*tensor.Tensor, error) {
	s.quantInfers.Add(1)
	cur := x
	for i, l := range s.Layers {
		var y *tensor.Tensor
		var err error
		if ql, ok := l.(QuantizedLayer); ok {
			y, err = ql.InferQuantized(cur)
		} else {
			y, err = l.Infer(cur)
		}
		if err != nil {
			if cur != x {
				tensor.PutScratch(cur)
			}
			return nil, fmt.Errorf("nn: layer %d infer quantized: %w", i, err)
		}
		if y != cur && cur != x {
			tensor.PutScratch(cur)
		}
		cur = y
	}
	return cur, nil
}

// InferCounts reports how many full-network inference passes ran on the
// f32 path vs the quantized path — the dispatch counters the serving
// layer surfaces per backend in /metricsz.
func (s *Sequential) InferCounts() (f32, quantized uint64) {
	return s.f32Infers.Load(), s.quantInfers.Load()
}

// quantWeights is the shared weight-side state for quantized layers.
type quantWeights struct {
	qweight tensor.QTensor
}

// prepare quantizes w (any 2-D weight matrix) per-tensor.
func (q *quantWeights) prepare(w *tensor.Tensor) error {
	if len(q.qweight.Data) != len(w.Data) {
		q.qweight.Data = make([]int8, len(w.Data))
	}
	return tensor.QuantizeInto(&q.qweight, w)
}

func (q *quantWeights) ready() bool { return len(q.qweight.Data) > 0 }

// PrepareQuantized quantizes the convolution weights per-tensor.
func (c *Conv2D) PrepareQuantized() error { return c.qw.prepare(c.weight.Value) }

// InferQuantized runs the convolution on the int8 path: the batch is
// quantized once with a per-batch scale, unrolled by an int8 im2col
// (4x less scratch traffic than the f32 one), multiplied against the
// prequantized weights with exact int32 accumulation, and scattered to
// NCHW with the f32 bias.
func (c *Conv2D) InferQuantized(x *tensor.Tensor) (*tensor.Tensor, error) {
	if !c.qw.ready() {
		return nil, fmt.Errorf("nn: conv InferQuantized before PrepareQuantized")
	}
	d, err := c.checkInput(x)
	if err != nil {
		return nil, err
	}
	k := c.KernelSize
	scale := tensor.ScaleFor(x.Data)
	qx := tensor.GetScratchI8(len(x.Data))
	if err := tensor.QuantizeSlice(qx, x.Data, scale); err != nil {
		tensor.PutScratchI8(qx)
		return nil, fmt.Errorf("nn: conv quantize input: %w", err)
	}
	total := d.n * d.outH * d.outW
	qcols := tensor.GetScratchI8(c.InChannels * k * k * total)
	im2colInto(qx, qcols, c.InChannels, k, c.Stride, c.Pad, d)
	tensor.PutScratchI8(qx)

	qcolsT := tensor.QTensor{Shape: []int{c.InChannels * k * k, total}, Data: qcols, Scale: scale}
	gemm := tensor.GetScratch(c.OutChannels, total)
	if err := tensor.QMatMulInto(gemm, &c.qw.qweight, &qcolsT); err != nil {
		tensor.PutScratchI8(qcols)
		tensor.PutScratch(gemm)
		return nil, fmt.Errorf("nn: conv quantized gemm: %w", err)
	}
	tensor.PutScratchI8(qcols)
	out := tensor.GetScratch(d.n, c.OutChannels, d.outH, d.outW)
	c.scatterOutput(gemm, out, d)
	tensor.PutScratch(gemm)
	return out, nil
}

// PrepareQuantized quantizes the linear weights per-tensor.
func (l *Linear) PrepareQuantized() error { return l.qw.prepare(l.weight.Value) }

// InferQuantized computes x·W + b with int8 operands: per-batch input
// scale, exact int32 accumulation, f32 bias.
func (l *Linear) InferQuantized(x *tensor.Tensor) (*tensor.Tensor, error) {
	if !l.qw.ready() {
		return nil, fmt.Errorf("nn: linear InferQuantized before PrepareQuantized")
	}
	n, per, err := l.flatShape(x)
	if err != nil {
		return nil, err
	}
	scale := tensor.ScaleFor(x.Data)
	qx := tensor.GetScratchI8(len(x.Data))
	if err := tensor.QuantizeSlice(qx, x.Data, scale); err != nil {
		tensor.PutScratchI8(qx)
		return nil, fmt.Errorf("nn: linear quantize input: %w", err)
	}
	qxT := tensor.QTensor{Shape: []int{n, per}, Data: qx, Scale: scale}
	out := tensor.GetScratch(n, l.Out)
	if err := tensor.QMatMulInto(out, &qxT, &l.qw.qweight); err != nil {
		tensor.PutScratchI8(qx)
		tensor.PutScratch(out)
		return nil, fmt.Errorf("nn: linear quantized gemm: %w", err)
	}
	tensor.PutScratchI8(qx)
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.bias.Value.Data[j]
		}
	}
	return out, nil
}

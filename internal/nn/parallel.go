package nn

import (
	"runtime"
	"sync"
)

// parallelWorkThreshold is the per-call element count below which
// im2col/col2im/scatter loops run single-threaded: under it, goroutine
// startup costs more than the copy.
const parallelWorkThreshold = 1 << 14

// parallelSamples runs f over [0, n) batch samples, fanning contiguous
// sample ranges across GOMAXPROCS workers when the total element count
// makes it worthwhile. Each sample's work must touch disjoint memory.
func parallelSamples(n, elems int, f func(s0, s1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if elems < parallelWorkThreshold || workers <= 1 || n <= 1 {
		f(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		s0 := w * chunk
		s1 := s0 + chunk
		if s1 > n {
			s1 = n
		}
		if s0 >= s1 {
			break
		}
		wg.Add(1)
		go func(s0, s1 int) {
			defer wg.Done()
			f(s0, s1)
		}(s0, s1)
	}
	wg.Wait()
}

package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"nbhd/internal/tensor"
)

// TestInferQuantizedCloseToF32 pins the quantized path's accuracy at the
// network level: outputs must track the f32 path within an envelope
// derived from the quantization scales. This is a sanity bound; the
// classification-level drift gate lives in the experiment package.
func TestInferQuantizedCloseToF32(t *testing.T) {
	net := testNet(t)
	if err := net.PrepareQuantized(); err != nil {
		t.Fatalf("PrepareQuantized: %v", err)
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 3; trial++ {
		x := tensor.MustNew(2+trial, 2, 10, 10)
		x.UniformInit(1, rng)
		want, err := net.Infer(x)
		if err != nil {
			t.Fatalf("Infer: %v", err)
		}
		wantData := append([]float32(nil), want.Data...)
		tensor.PutScratch(want)
		got, err := net.InferQuantized(x)
		if err != nil {
			t.Fatalf("InferQuantized: %v", err)
		}
		if len(got.Data) != len(wantData) {
			t.Fatalf("quantized output %d elems, f32 %d", len(got.Data), len(wantData))
		}
		// Scale of the final linear output dominates; with unit-uniform
		// inputs and He-initialized weights an absolute tolerance of 0.15
		// is ~40 quantization steps of headroom while still catching any
		// scale or transpose bug (those produce O(1) errors).
		var maxDiff float64
		for i := range wantData {
			if d := math.Abs(float64(got.Data[i] - wantData[i])); d > maxDiff {
				maxDiff = d
			}
		}
		tensor.PutScratch(got)
		if maxDiff > 0.15 {
			t.Fatalf("trial %d: quantized output drifts %.4f from f32", trial, maxDiff)
		}
		if maxDiff == 0 {
			t.Fatalf("trial %d: quantized output exactly equals f32 — quantized path not engaged", trial)
		}
	}
}

// TestInferQuantizedRequiresPrepare: calling the quantized path before
// PrepareQuantized must fail loudly, not fall back silently.
func TestInferQuantizedRequiresPrepare(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	conv, err := NewConv2D(1, 2, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewSequential(conv)
	x := tensor.MustNew(1, 1, 6, 6)
	x.UniformInit(1, rng)
	if _, err := net.InferQuantized(x); err == nil {
		t.Fatal("InferQuantized before PrepareQuantized did not error")
	}
}

// TestPrepareQuantizedRefreshesWeights: weights changed after a prepare
// must not leak stale quantized copies once re-prepared.
func TestPrepareQuantizedRefreshesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	lin, err := NewLinear(4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewSequential(lin)
	if err := net.PrepareQuantized(); err != nil {
		t.Fatal(err)
	}
	x := tensor.MustNew(2, 4)
	x.UniformInit(1, rng)
	before, err := net.InferQuantized(x)
	if err != nil {
		t.Fatal(err)
	}
	beforeData := append([]float32(nil), before.Data...)
	tensor.PutScratch(before)

	for i := range lin.weight.Value.Data {
		lin.weight.Value.Data[i] *= 2
	}
	if err := net.PrepareQuantized(); err != nil {
		t.Fatal(err)
	}
	after, err := net.InferQuantized(x)
	if err != nil {
		t.Fatal(err)
	}
	defer tensor.PutScratch(after)
	same := true
	for i := range beforeData {
		if after.Data[i] != beforeData[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("doubling weights then re-preparing left quantized outputs unchanged")
	}
}

// TestInferQuantizedConcurrent is the quantized twin of
// TestInferConcurrent: once prepared, the int8 path must be reentrant
// (run under -race).
func TestInferQuantizedConcurrent(t *testing.T) {
	net := testNet(t)
	if err := net.PrepareQuantized(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	x := tensor.MustNew(2, 2, 10, 10)
	x.UniformInit(1, rng)
	want, err := net.InferQuantized(x)
	if err != nil {
		t.Fatal(err)
	}
	wantData := append([]float32(nil), want.Data...)
	tensor.PutScratch(want)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got, err := net.InferQuantized(x)
				if err != nil {
					errs <- err
					return
				}
				for i := range wantData {
					if got.Data[i] != wantData[i] {
						t.Errorf("concurrent InferQuantized diverged at %d", i)
						return
					}
				}
				tensor.PutScratch(got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInferCountsDispatch verifies the f32-vs-quantized dispatch
// counters the serving layer exports.
func TestInferCountsDispatch(t *testing.T) {
	net := testNet(t)
	if err := net.PrepareQuantized(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(45))
	x := tensor.MustNew(1, 2, 10, 10)
	x.UniformInit(1, rng)
	f0, q0 := net.InferCounts()
	for i := 0; i < 3; i++ {
		out, err := net.Infer(x)
		if err != nil {
			t.Fatal(err)
		}
		tensor.PutScratch(out)
	}
	for i := 0; i < 2; i++ {
		out, err := net.InferQuantized(x)
		if err != nil {
			t.Fatal(err)
		}
		tensor.PutScratch(out)
	}
	f1, q1 := net.InferCounts()
	if f1-f0 != 3 || q1-q0 != 2 {
		t.Fatalf("counts advanced f32 %d quant %d, want 3 and 2", f1-f0, q1-q0)
	}
}

package nn

import (
	"fmt"
	"math/rand"

	"nbhd/internal/tensor"
)

// Dropout zeros a random fraction of activations during training and
// scales the survivors by 1/(1-rate) (inverted dropout), passing
// activations through unchanged at inference.
type Dropout struct {
	Rate float64

	rng  *rand.Rand
	mask []bool
}

// NewDropout constructs the layer. Rate must be in [0,1).
func NewDropout(rate float64, seed int64) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("nn: dropout rate %f outside [0,1)", rate)
	}
	return &Dropout{Rate: rate, rng: rand.New(rand.NewSource(seed))}, nil
}

// Forward applies the mask in training mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if !train || d.Rate == 0 {
		d.mask = nil
		return x.Clone(), nil
	}
	out := x.Clone()
	d.mask = make([]bool, len(out.Data))
	scale := float32(1 / (1 - d.Rate))
	for i := range out.Data {
		if d.rng.Float64() < d.Rate {
			out.Data[i] = 0
		} else {
			d.mask[i] = true
			out.Data[i] *= scale
		}
	}
	return out, nil
}

// Backward routes gradients through the surviving units with the same
// scale.
func (d *Dropout) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if d.mask == nil {
		// Inference-mode pass-through (or rate 0).
		return gradOut.Clone(), nil
	}
	if len(d.mask) != gradOut.NumElems() {
		return nil, fmt.Errorf("nn: dropout backward grad has %d elems, mask has %d", gradOut.NumElems(), len(d.mask))
	}
	out := gradOut.Clone()
	scale := float32(1 / (1 - d.Rate))
	for i := range out.Data {
		if d.mask[i] {
			out.Data[i] *= scale
		} else {
			out.Data[i] = 0
		}
	}
	return out, nil
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

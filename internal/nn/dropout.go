package nn

import (
	"fmt"
	"math/rand"

	"nbhd/internal/tensor"
)

// Dropout zeros a random fraction of activations during training and
// scales the survivors by 1/(1-rate) (inverted dropout), passing
// activations through unchanged at inference.
type Dropout struct {
	Rate float64

	rng  *rand.Rand
	mask []bool
}

// NewDropout constructs the layer. Rate must be in [0,1).
func NewDropout(rate float64, seed int64) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("nn: dropout rate %f outside [0,1)", rate)
	}
	return &Dropout{Rate: rate, rng: rand.New(rand.NewSource(seed))}, nil
}

// Forward applies the mask in training mode.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	out := tensor.GetScratch(x.Shape...)
	if !train || d.Rate == 0 {
		d.mask = nil
		copy(out.Data, x.Data)
		return out, nil
	}
	if cap(d.mask) >= len(x.Data) {
		d.mask = d.mask[:len(x.Data)]
	} else {
		d.mask = make([]bool, len(x.Data))
	}
	scale := float32(1 / (1 - d.Rate))
	for i, v := range x.Data {
		if d.rng.Float64() < d.Rate {
			out.Data[i] = 0
			d.mask[i] = false
		} else {
			d.mask[i] = true
			out.Data[i] = v * scale
		}
	}
	return out, nil
}

// Infer passes activations through unchanged (identity, no copy); safe
// for concurrent use.
func (d *Dropout) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	return x, nil
}

// Backward routes gradients through the surviving units with the same
// scale.
func (d *Dropout) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	gradIn := tensor.GetScratch(gradOut.Shape...)
	if d.mask == nil {
		// Inference-mode pass-through (or rate 0).
		copy(gradIn.Data, gradOut.Data)
		return gradIn, nil
	}
	if len(d.mask) != gradOut.NumElems() {
		tensor.PutScratch(gradIn)
		return nil, fmt.Errorf("nn: dropout backward grad has %d elems, mask has %d", gradOut.NumElems(), len(d.mask))
	}
	scale := float32(1 / (1 - d.Rate))
	for i, g := range gradOut.Data {
		if d.mask[i] {
			gradIn.Data[i] = g * scale
		} else {
			gradIn.Data[i] = 0
		}
	}
	return gradIn, nil
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

package nn

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"nbhd/internal/tensor"
)

// testNet builds a conv->relu->pool->conv->linear stack covering every
// layer family with parameters.
func testNet(t *testing.T) *Sequential {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	conv1, err := NewConv2D(2, 4, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	relu, err := NewLeakyReLU(0.1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool2D(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	conv2, err := NewConv2D(4, 3, 3, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool2, err := NewMaxPool2D(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	drop, err := NewDropout(0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewLinear(3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	return NewSequential(conv1, relu, pool, conv2, pool2, drop, lin)
}

// TestInferMatchesForward pins the train/infer split's core guarantee:
// the stateless Infer path produces bit-identical outputs to the
// training-mode Forward with train=false.
func TestInferMatchesForward(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 4; trial++ {
		n := 1 + trial
		x := tensor.MustNew(n, 2, 10, 10)
		x.UniformInit(1, rng)
		want, err := net.Forward(x, false)
		if err != nil {
			t.Fatalf("Forward: %v", err)
		}
		wantData := append([]float32(nil), want.Data...)
		got, err := net.Infer(x)
		if err != nil {
			t.Fatalf("Infer: %v", err)
		}
		if !got.SameShape(want) {
			t.Fatalf("Infer shape %v, Forward shape %v", got.Shape, want.Shape)
		}
		for i := range wantData {
			if got.Data[i] != wantData[i] {
				t.Fatalf("trial %d: Infer[%d] = %g, Forward = %g", trial, i, got.Data[i], wantData[i])
			}
		}
	}
}

// TestInferBatchMatchesSingle verifies batched inference is bit-identical
// to running each sample alone — the property that lets Detect batch
// frames without changing any reported metric.
func TestInferBatchMatchesSingle(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(33))
	const n = 5
	batch := tensor.MustNew(n, 2, 10, 10)
	batch.UniformInit(1, rng)
	got, err := net.Infer(batch)
	if err != nil {
		t.Fatalf("batched Infer: %v", err)
	}
	gotData := append([]float32(nil), got.Data...)
	per := got.NumElems() / n
	inPer := batch.NumElems() / n
	for s := 0; s < n; s++ {
		one := tensor.MustNew(1, 2, 10, 10)
		copy(one.Data, batch.Data[s*inPer:(s+1)*inPer])
		single, err := net.Infer(one)
		if err != nil {
			t.Fatalf("single Infer %d: %v", s, err)
		}
		for i := 0; i < per; i++ {
			if single.Data[i] != gotData[s*per+i] {
				t.Fatalf("sample %d elem %d: single %g vs batched %g", s, i, single.Data[i], gotData[s*per+i])
			}
		}
	}
}

// TestInferConcurrent drives many concurrent Infer calls through one
// network — run under -race this is the reentrancy proof for the
// evaluation engine's parallel fan-out.
func TestInferConcurrent(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(34))
	x := tensor.MustNew(2, 2, 10, 10)
	x.UniformInit(1, rng)
	want, err := net.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	wantData := append([]float32(nil), want.Data...)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got, err := net.Infer(x)
				if err != nil {
					errs <- err
					return
				}
				for i := range wantData {
					if got.Data[i] != wantData[i] {
						t.Errorf("concurrent Infer diverged at %d", i)
						return
					}
				}
				tensor.PutScratch(got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTrainingStepsSteadyStateAllocations verifies the pooled compute
// layer: after a warmup step, further forward/backward steps reuse
// pooled buffers instead of allocating afresh.
func TestTrainingStepsSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	// Pin to one P so worker-goroutine bookkeeping doesn't show up as
	// allocations; the count is then deterministic across machines.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	net := testNet(t)
	rng := rand.New(rand.NewSource(35))
	x := tensor.MustNew(4, 2, 10, 10)
	x.UniformInit(1, rng)
	step := func() {
		out, err := net.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		loss := tensor.GetScratch(out.Shape...)
		if err := SigmoidInto(loss, out); err != nil {
			t.Fatal(err)
		}
		net.ZeroGrads()
		gin, err := net.Backward(loss)
		if err != nil {
			t.Fatal(err)
		}
		tensor.PutScratch(gin)
		tensor.PutScratch(loss)
	}
	step() // warm the pool
	allocs := testing.AllocsPerRun(10, step)
	// A handful of incidental allocations (goroutine bookkeeping, slice
	// headers) is fine; the seed path allocated hundreds of tensors.
	if allocs > 30 {
		t.Errorf("steady-state training step allocates %.0f objects; pooling is not engaging", allocs)
	}
}

package nn

import (
	"fmt"
	"math"
	"math/rand"

	"nbhd/internal/tensor"
)

// MaxPool2D is a max pooling layer over NCHW tensors.
type MaxPool2D struct {
	Size, Stride int

	// Training cache: the chosen input index per output element plus the
	// input geometry (no reference to the input tensor is retained).
	argmax []int
	inDims [4]int
}

// NewMaxPool2D constructs a pooling layer; stride 0 defaults to the
// window size (non-overlapping pooling).
func NewMaxPool2D(size, stride int) (*MaxPool2D, error) {
	if size <= 0 {
		return nil, fmt.Errorf("nn: pool size must be positive, got %d", size)
	}
	if stride == 0 {
		stride = size
	}
	if stride < 0 {
		return nil, fmt.Errorf("nn: pool stride must be positive, got %d", stride)
	}
	return &MaxPool2D{Size: size, Stride: stride}, nil
}

// outDims validates the input and derives the pooled geometry.
func (p *MaxPool2D) outDims(x *tensor.Tensor) (n, c, outH, outW int, err error) {
	if len(x.Shape) != 4 {
		return 0, 0, 0, 0, fmt.Errorf("nn: pool expects NCHW input, got %v", x.Shape)
	}
	n, c = x.Shape[0], x.Shape[1]
	h, w := x.Shape[2], x.Shape[3]
	outH = (h-p.Size)/p.Stride + 1
	outW = (w-p.Size)/p.Stride + 1
	if outH <= 0 || outW <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("nn: pool output degenerate for %dx%d (size=%d stride=%d)", h, w, p.Size, p.Stride)
	}
	return n, c, outH, outW, nil
}

// Forward computes max pooling and records the argmax for Backward.
func (p *MaxPool2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	n, c, outH, outW, err := p.outDims(x)
	if err != nil {
		return nil, err
	}
	h, w := x.Shape[2], x.Shape[3]
	out := tensor.GetScratch(n, c, outH, outW)
	elems := out.NumElems()
	if cap(p.argmax) >= elems {
		p.argmax = p.argmax[:elems]
	} else {
		p.argmax = make([]int, elems)
	}
	p.inDims = [4]int{n, c, h, w}
	oi := 0
	for s := 0; s < n; s++ {
		for ci := 0; ci < c; ci++ {
			chBase := (s*c + ci) * h * w
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := -1
					for ky := 0; ky < p.Size; ky++ {
						iy := oy*p.Stride + ky
						for kx := 0; kx < p.Size; kx++ {
							ix := ox*p.Stride + kx
							idx := chBase + iy*w + ix
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Data[oi] = best
					p.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out, nil
}

// Infer computes max pooling without recording argmax; it is stateless
// and safe for concurrent use. Samples fan across workers.
func (p *MaxPool2D) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	n, c, outH, outW, err := p.outDims(x)
	if err != nil {
		return nil, err
	}
	h, w := x.Shape[2], x.Shape[3]
	out := tensor.GetScratch(n, c, outH, outW)
	perSample := c * outH * outW
	fast2x2 := p.Size == 2 && p.Stride == 2
	parallelSamples(n, len(x.Data), func(s0, s1 int) {
		for s := s0; s < s1; s++ {
			oi := s * perSample
			for ci := 0; ci < c; ci++ {
				chBase := (s*c + ci) * h * w
				if fast2x2 {
					// The ubiquitous 2x2/stride-2 case: compare the two rows
					// of each window directly, skipping the window loops and
					// the index arithmetic (identical results for non-NaN
					// inputs; seeding from the first element instead of -Inf
					// only differs when that element is NaN).
					for oy := 0; oy < outH; oy++ {
						top := x.Data[chBase+2*oy*w : chBase+2*oy*w+2*outW]
						bot := x.Data[chBase+(2*oy+1)*w : chBase+(2*oy+1)*w+2*outW]
						orow := out.Data[oi : oi+outW]
						for ox := range orow {
							best := top[2*ox]
							if v := top[2*ox+1]; v > best {
								best = v
							}
							if v := bot[2*ox]; v > best {
								best = v
							}
							if v := bot[2*ox+1]; v > best {
								best = v
							}
							orow[ox] = best
						}
						oi += outW
					}
					continue
				}
				for oy := 0; oy < outH; oy++ {
					for ox := 0; ox < outW; ox++ {
						best := float32(math.Inf(-1))
						for ky := 0; ky < p.Size; ky++ {
							rowBase := chBase + (oy*p.Stride+ky)*w + ox*p.Stride
							for kx := 0; kx < p.Size; kx++ {
								if v := x.Data[rowBase+kx]; v > best {
									best = v
								}
							}
						}
						out.Data[oi] = best
						oi++
					}
				}
			}
		}
	})
	return out, nil
}

// Backward routes gradients to the argmax positions.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if p.argmax == nil {
		return nil, fmt.Errorf("nn: pool backward before forward")
	}
	if gradOut.NumElems() != len(p.argmax) {
		return nil, fmt.Errorf("nn: pool backward grad has %d elems, want %d", gradOut.NumElems(), len(p.argmax))
	}
	gradIn := tensor.GetScratch(p.inDims[0], p.inDims[1], p.inDims[2], p.inDims[3])
	gradIn.Zero()
	for i, src := range p.argmax {
		gradIn.Data[src] += gradOut.Data[i]
	}
	return gradIn, nil
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha*x); alpha 0 gives plain ReLU.
type LeakyReLU struct {
	Alpha float32
	input *tensor.Tensor
}

// NewLeakyReLU constructs the activation. Alpha must be in [0,1).
func NewLeakyReLU(alpha float32) (*LeakyReLU, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("nn: leaky relu alpha %f outside [0,1)", alpha)
	}
	return &LeakyReLU{Alpha: alpha}, nil
}

// apply writes the activation of x into a fresh scratch tensor.
func (r *LeakyReLU) apply(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.GetScratch(x.Shape...)
	for i, v := range x.Data {
		if v < 0 {
			v = r.Alpha * v
		}
		out.Data[i] = v
	}
	return out
}

// Forward applies the activation elementwise, caching the input for
// Backward.
func (r *LeakyReLU) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	r.input = x
	return r.apply(x), nil
}

// Infer applies the activation without caching; safe for concurrent use.
func (r *LeakyReLU) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	return r.apply(x), nil
}

// Backward scales gradients by the activation's slope at the cached
// input, then releases the cache.
func (r *LeakyReLU) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if r.input == nil {
		return nil, fmt.Errorf("nn: relu backward before forward")
	}
	if !gradOut.SameShape(r.input) {
		return nil, fmt.Errorf("nn: relu backward shape %v, want %v", gradOut.Shape, r.input.Shape)
	}
	gradIn := tensor.GetScratch(gradOut.Shape...)
	for i, g := range gradOut.Data {
		if r.input.Data[i] < 0 {
			g *= r.Alpha
		}
		gradIn.Data[i] = g
	}
	r.input = nil
	return gradIn, nil
}

// Params returns nil; activations have no parameters.
func (r *LeakyReLU) Params() []*Param { return nil }

// Linear is a fully connected layer over (N, In) tensors.
type Linear struct {
	In, Out int
	weight  *Param // (In, Out)
	bias    *Param // (Out)

	// qw holds the int8 weight copy for the quantized inference path
	// (empty until PrepareQuantized).
	qw quantWeights

	// Training cache: a 2-D view (shared backing array, no copy) of the
	// forward input, cleared in Backward.
	inView tensor.Tensor
	input  *tensor.Tensor
}

// NewLinear constructs a fully connected layer with He initialization.
func NewLinear(in, out int, rng *rand.Rand) (*Linear, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: linear dims must be positive, got %d -> %d", in, out)
	}
	w, err := newParam(fmt.Sprintf("linear%dx%d_w", in, out), in, out)
	if err != nil {
		return nil, err
	}
	if err := w.Value.HeInit(in, rng); err != nil {
		return nil, err
	}
	b, err := newParam(fmt.Sprintf("linear%dx%d_b", in, out), out)
	if err != nil {
		return nil, err
	}
	return &Linear{In: in, Out: out, weight: w, bias: b}, nil
}

// compute runs x·W + b into a fresh scratch tensor through the given 2-D
// view of x (higher-rank inputs flatten to (N, In) without copying).
func (l *Linear) compute(flat *tensor.Tensor) (*tensor.Tensor, error) {
	n := flat.Shape[0]
	out := tensor.GetScratch(n, l.Out)
	if err := tensor.MatMulInto(out, flat, l.weight.Value); err != nil {
		tensor.PutScratch(out)
		return nil, fmt.Errorf("nn: linear forward: %w", err)
	}
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.bias.Value.Data[j]
		}
	}
	return out, nil
}

// flatShape validates and returns the flattened (N, In) geometry.
func (l *Linear) flatShape(x *tensor.Tensor) (n, per int, err error) {
	n = x.Shape[0]
	per = x.NumElems() / n
	if per != l.In {
		return 0, 0, fmt.Errorf("nn: linear expects %d features, got %d", l.In, per)
	}
	return n, per, nil
}

// Forward computes x·W + b. Inputs of higher rank are flattened to
// (N, In).
func (l *Linear) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	n, per, err := l.flatShape(x)
	if err != nil {
		return nil, err
	}
	l.inView.Shape = append(l.inView.Shape[:0], n, per)
	l.inView.Data = x.Data
	l.input = &l.inView
	return l.compute(l.input)
}

// Infer computes x·W + b without caching; safe for concurrent use.
func (l *Linear) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	n, per, err := l.flatShape(x)
	if err != nil {
		return nil, err
	}
	flat := tensor.Tensor{Shape: []int{n, per}, Data: x.Data}
	return l.compute(&flat)
}

// Backward accumulates parameter gradients, returns input gradients, and
// releases the cached input view.
func (l *Linear) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if l.input == nil {
		return nil, fmt.Errorf("nn: linear backward before forward")
	}
	n := l.input.Shape[0]
	if len(gradOut.Shape) != 2 || gradOut.Shape[0] != n || gradOut.Shape[1] != l.Out {
		return nil, fmt.Errorf("nn: linear backward grad shape %v, want [%d %d]", gradOut.Shape, n, l.Out)
	}
	// dW += xᵀ·g
	dw := tensor.GetScratch(l.In, l.Out)
	if err := tensor.MatMulTransAInto(dw, l.input, gradOut); err != nil {
		tensor.PutScratch(dw)
		return nil, err
	}
	if err := l.weight.Grad.AddScaled(dw, 1); err != nil {
		tensor.PutScratch(dw)
		return nil, err
	}
	tensor.PutScratch(dw)
	// db += column sums of g.
	for i := 0; i < n; i++ {
		row := gradOut.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			l.bias.Grad.Data[j] += row[j]
		}
	}
	// dx = g·Wᵀ
	gradIn := tensor.GetScratch(n, l.In)
	if err := tensor.MatMulTransBInto(gradIn, gradOut, l.weight.Value); err != nil {
		tensor.PutScratch(gradIn)
		return nil, err
	}
	l.input = nil
	l.inView.Data = nil
	return gradIn, nil
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }

package nn

import (
	"fmt"
	"math"
	"math/rand"

	"nbhd/internal/tensor"
)

// MaxPool2D is a max pooling layer over NCHW tensors.
type MaxPool2D struct {
	Size, Stride int

	input   *tensor.Tensor
	argmax  []int // flat input index chosen for each output element
	outDims []int
}

// NewMaxPool2D constructs a pooling layer; stride 0 defaults to the
// window size (non-overlapping pooling).
func NewMaxPool2D(size, stride int) (*MaxPool2D, error) {
	if size <= 0 {
		return nil, fmt.Errorf("nn: pool size must be positive, got %d", size)
	}
	if stride == 0 {
		stride = size
	}
	if stride < 0 {
		return nil, fmt.Errorf("nn: pool stride must be positive, got %d", stride)
	}
	return &MaxPool2D{Size: size, Stride: stride}, nil
}

// Forward computes max pooling.
func (p *MaxPool2D) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	if len(x.Shape) != 4 {
		return nil, fmt.Errorf("nn: pool expects NCHW input, got %v", x.Shape)
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (h-p.Size)/p.Stride + 1
	outW := (w-p.Size)/p.Stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("nn: pool output degenerate for %dx%d (size=%d stride=%d)", h, w, p.Size, p.Stride)
	}
	out := tensor.MustNew(n, c, outH, outW)
	p.input = x
	p.argmax = make([]int, out.NumElems())
	p.outDims = []int{n, c, outH, outW}
	oi := 0
	for s := 0; s < n; s++ {
		for ci := 0; ci < c; ci++ {
			chBase := (s*c + ci) * h * w
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := -1
					for ky := 0; ky < p.Size; ky++ {
						iy := oy*p.Stride + ky
						for kx := 0; kx < p.Size; kx++ {
							ix := ox*p.Stride + kx
							idx := chBase + iy*w + ix
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Data[oi] = best
					p.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out, nil
}

// Backward routes gradients to the argmax positions.
func (p *MaxPool2D) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if p.input == nil {
		return nil, fmt.Errorf("nn: pool backward before forward")
	}
	if gradOut.NumElems() != len(p.argmax) {
		return nil, fmt.Errorf("nn: pool backward grad has %d elems, want %d", gradOut.NumElems(), len(p.argmax))
	}
	gradIn := tensor.MustNew(p.input.Shape...)
	for i, src := range p.argmax {
		gradIn.Data[src] += gradOut.Data[i]
	}
	return gradIn, nil
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha*x); alpha 0 gives plain ReLU.
type LeakyReLU struct {
	Alpha float32
	input *tensor.Tensor
}

// NewLeakyReLU constructs the activation. Alpha must be in [0,1).
func NewLeakyReLU(alpha float32) (*LeakyReLU, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("nn: leaky relu alpha %f outside [0,1)", alpha)
	}
	return &LeakyReLU{Alpha: alpha}, nil
}

// Forward applies the activation elementwise.
func (r *LeakyReLU) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	r.input = x
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = r.Alpha * v
		}
	}
	return out, nil
}

// Backward scales gradients by the activation's slope at the cached
// input.
func (r *LeakyReLU) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if r.input == nil {
		return nil, fmt.Errorf("nn: relu backward before forward")
	}
	if !gradOut.SameShape(r.input) {
		return nil, fmt.Errorf("nn: relu backward shape %v, want %v", gradOut.Shape, r.input.Shape)
	}
	gradIn := gradOut.Clone()
	for i, v := range r.input.Data {
		if v < 0 {
			gradIn.Data[i] *= r.Alpha
		}
	}
	return gradIn, nil
}

// Params returns nil; activations have no parameters.
func (r *LeakyReLU) Params() []*Param { return nil }

// Linear is a fully connected layer over (N, In) tensors.
type Linear struct {
	In, Out int
	weight  *Param // (In, Out)
	bias    *Param // (Out)
	input   *tensor.Tensor
}

// NewLinear constructs a fully connected layer with He initialization.
func NewLinear(in, out int, rng *rand.Rand) (*Linear, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: linear dims must be positive, got %d -> %d", in, out)
	}
	w, err := newParam(fmt.Sprintf("linear%dx%d_w", in, out), in, out)
	if err != nil {
		return nil, err
	}
	if err := w.Value.HeInit(in, rng); err != nil {
		return nil, err
	}
	b, err := newParam(fmt.Sprintf("linear%dx%d_b", in, out), out)
	if err != nil {
		return nil, err
	}
	return &Linear{In: in, Out: out, weight: w, bias: b}, nil
}

// Forward computes x·W + b. Inputs of higher rank are flattened to
// (N, In).
func (l *Linear) Forward(x *tensor.Tensor, _ bool) (*tensor.Tensor, error) {
	n := x.Shape[0]
	flat, err := x.Reshape(n, x.NumElems()/n)
	if err != nil {
		return nil, err
	}
	if flat.Shape[1] != l.In {
		return nil, fmt.Errorf("nn: linear expects %d features, got %d", l.In, flat.Shape[1])
	}
	l.input = flat
	out, err := tensor.MatMul(flat, l.weight.Value)
	if err != nil {
		return nil, fmt.Errorf("nn: linear forward: %w", err)
	}
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.bias.Value.Data[j]
		}
	}
	return out, nil
}

// Backward accumulates parameter gradients and returns input gradients.
func (l *Linear) Backward(gradOut *tensor.Tensor) (*tensor.Tensor, error) {
	if l.input == nil {
		return nil, fmt.Errorf("nn: linear backward before forward")
	}
	n := l.input.Shape[0]
	if len(gradOut.Shape) != 2 || gradOut.Shape[0] != n || gradOut.Shape[1] != l.Out {
		return nil, fmt.Errorf("nn: linear backward grad shape %v, want [%d %d]", gradOut.Shape, n, l.Out)
	}
	// dW += xᵀ·g
	dw, err := tensor.MatMulTransA(l.input, gradOut)
	if err != nil {
		return nil, err
	}
	if err := l.weight.Grad.AddScaled(dw, 1); err != nil {
		return nil, err
	}
	// db += column sums of g.
	for i := 0; i < n; i++ {
		row := gradOut.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			l.bias.Grad.Data[j] += row[j]
		}
	}
	// dx = g·Wᵀ
	gradIn, err := tensor.MatMulTransB(gradOut, l.weight.Value)
	if err != nil {
		return nil, err
	}
	return gradIn, nil
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }

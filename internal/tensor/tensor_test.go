package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	a, err := New(2, 3, 4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if a.NumElems() != 24 {
		t.Errorf("NumElems = %d", a.NumElems())
	}
	if a.Dim(0) != 2 || a.Dim(1) != 3 || a.Dim(2) != 4 {
		t.Errorf("dims = %v", a.Shape)
	}
	if a.Dim(-1) != 0 || a.Dim(3) != 0 {
		t.Error("out-of-range Dim should return 0")
	}
	if _, err := New(); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative dimension accepted")
	}
}

func TestFromSlice(t *testing.T) {
	a, err := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if a.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %f", a.At(1, 2))
	}
	if a.At(0, 0) != 1 {
		t.Errorf("At(0,0) = %f", a.At(0, 0))
	}
	if _, err := FromSlice([]float32{1, 2}, 3); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAtSetRowMajor(t *testing.T) {
	a := MustNew(2, 3)
	a.Set(7, 1, 0)
	if a.Data[3] != 7 {
		t.Errorf("row-major layout wrong: data = %v", a.Data)
	}
	if a.At(1, 0) != 7 {
		t.Errorf("At(1,0) = %f", a.At(1, 0))
	}
}

func TestOffsetPanics(t *testing.T) {
	a := MustNew(2, 2)
	assertPanics(t, func() { a.At(0) }, "rank mismatch")
	assertPanics(t, func() { a.At(2, 0) }, "out of range")
	assertPanics(t, func() { a.At(0, -1) }, "negative index")
}

func assertPanics(t *testing.T, f func(), name string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestCloneIndependent(t *testing.T) {
	a := MustNew(2, 2)
	a.Fill(1)
	b := a.Clone()
	b.Set(5, 0, 0)
	if a.At(0, 0) != 1 {
		t.Error("clone shares storage")
	}
	if !a.SameShape(b) {
		t.Error("clone changed shape")
	}
}

func TestReshape(t *testing.T) {
	a, err := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatalf("Reshape: %v", err)
	}
	if b.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %f", b.At(2, 1))
	}
	if _, err := a.Reshape(4, 2); err == nil {
		t.Error("size-changing reshape accepted")
	}
}

func TestZeroFillScale(t *testing.T) {
	a := MustNew(3)
	a.Fill(2)
	a.Scale(1.5)
	if a.At(1) != 3 {
		t.Errorf("scale result %f", a.At(1))
	}
	a.Zero()
	if a.At(0) != 0 || a.At(2) != 0 {
		t.Error("Zero failed")
	}
}

func TestAddScaled(t *testing.T) {
	a := MustNew(2)
	a.Fill(1)
	b := MustNew(2)
	b.Fill(3)
	if err := a.AddScaled(b, 0.5); err != nil {
		t.Fatalf("AddScaled: %v", err)
	}
	if a.At(0) != 2.5 {
		t.Errorf("AddScaled result %f", a.At(0))
	}
	c := MustNew(3)
	if err := a.AddScaled(c, 1); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestDotAndNorm(t *testing.T) {
	a, _ := FromSlice([]float32{3, 4}, 2)
	b, _ := FromSlice([]float32{1, 2}, 2)
	d, err := a.Dot(b)
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if math.Abs(d-11) > 1e-9 {
		t.Errorf("Dot = %f", d)
	}
	if n := a.L2Norm(); math.Abs(n-5) > 1e-6 {
		t.Errorf("L2Norm = %f", n)
	}
	c := MustNew(3)
	if _, err := a.Dot(c); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestHeInit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := MustNew(1000)
	if err := a.HeInit(50, rng); err != nil {
		t.Fatalf("HeInit: %v", err)
	}
	var sum, sumSq float64
	for _, v := range a.Data {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	mean := sum / 1000
	variance := sumSq/1000 - mean*mean
	wantVar := 2.0 / 50
	if math.Abs(mean) > 0.03 {
		t.Errorf("He mean = %f", mean)
	}
	if math.Abs(variance-wantVar) > wantVar*0.3 {
		t.Errorf("He variance = %f, want ~%f", variance, wantVar)
	}
	if err := a.HeInit(0, rng); err == nil {
		t.Error("zero fan-in accepted")
	}
}

func TestUniformInit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := MustNew(500)
	a.UniformInit(0.1, rng)
	for _, v := range a.Data {
		if v < -0.1 || v > 0.1 {
			t.Fatalf("uniform value %f outside bound", v)
		}
	}
}

func TestMatMulSmall(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	want := [][]float32{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %f, want %f", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulValidation(t *testing.T) {
	a := MustNew(2, 3)
	b := MustNew(4, 2)
	if _, err := MatMul(a, b); err == nil {
		t.Error("inner-dim mismatch accepted")
	}
	c := MustNew(6)
	if _, err := MatMul(a, c); err == nil {
		t.Error("1-D operand accepted")
	}
}

func TestMatMulIdentity(t *testing.T) {
	n := 5
	id := MustNew(n, n)
	for i := 0; i < n; i++ {
		id.Set(1, i, i)
	}
	rng := rand.New(rand.NewSource(3))
	a := MustNew(n, n)
	a.UniformInit(1, rng)
	c, err := MatMul(a, id)
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	for i := range a.Data {
		if math.Abs(float64(c.Data[i]-a.Data[i])) > 1e-6 {
			t.Fatal("A·I != A")
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// A problem big enough to trigger the parallel path must agree with
	// the mathematical result computed naively.
	m, k, n := 64, 48, 40
	rng := rand.New(rand.NewSource(4))
	a := MustNew(m, k)
	a.UniformInit(1, rng)
	b := MustNew(k, n)
	b.UniformInit(1, rng)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	for trial := 0; trial < 20; trial++ {
		i, j := rng.Intn(m), rng.Intn(n)
		var want float64
		for p := 0; p < k; p++ {
			want += float64(a.At(i, p)) * float64(b.At(p, j))
		}
		if math.Abs(float64(c.At(i, j))-want) > 1e-3 {
			t.Fatalf("C[%d][%d] = %f, want %f", i, j, c.At(i, j), want)
		}
	}
}

func TestMatMulTransA(t *testing.T) {
	// A is k×m; result should equal Aᵀ·B.
	a, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2) // [[1,2],[3,4]]
	b, _ := FromSlice([]float32{5, 6, 7, 8}, 2, 2) // [[5,6],[7,8]]
	c, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatalf("MatMulTransA: %v", err)
	}
	// Aᵀ = [[1,3],[2,4]]; Aᵀ·B = [[26,30],[38,44]].
	want := [][]float32{{26, 30}, {38, 44}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %f, want %f", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	bad := MustNew(3, 2)
	if _, err := MatMulTransA(a, bad); err == nil {
		t.Error("outer-dim mismatch accepted")
	}
}

func TestMatMulTransB(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b, _ := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c, err := MatMulTransB(a, b)
	if err != nil {
		t.Fatalf("MatMulTransB: %v", err)
	}
	// Bᵀ = [[5,7],[6,8]]; A·Bᵀ = [[17,23],[39,53]].
	want := [][]float32{{17, 23}, {39, 53}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("C[%d][%d] = %f, want %f", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	bad := MustNew(2, 3)
	if _, err := MatMulTransB(a, bad); err == nil {
		t.Error("inner-dim mismatch accepted")
	}
}

// Property: (A·B)ᵀ computed via MatMulTransA/B identities agrees with
// direct MatMul on random matrices.
func TestMatMulTransposeIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 2+rng.Intn(6), 2+rng.Intn(6), 2+rng.Intn(6)
		a := MustNew(m, k)
		a.UniformInit(1, rng)
		b := MustNew(k, n)
		b.UniformInit(1, rng)
		direct, err := MatMul(a, b)
		if err != nil {
			return false
		}
		// MatMulTransA(Aᵀ-stored, B) == A·B when we store A transposed.
		aT := MustNew(k, m)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				aT.Set(a.At(i, p), p, i)
			}
		}
		viaTrans, err := MatMulTransA(aT, b)
		if err != nil {
			return false
		}
		for i := range direct.Data {
			if math.Abs(float64(direct.Data[i]-viaTrans.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

package tensor

import (
	"sync"
	"testing"
)

func TestPoolGetShapes(t *testing.T) {
	p := NewPool()
	a := p.Get(2, 3, 4)
	if len(a.Data) != 24 || a.Dim(0) != 2 || a.Dim(2) != 4 {
		t.Fatalf("Get(2,3,4) = shape %v, %d elems", a.Shape, len(a.Data))
	}
	p.Put(a)
	// Same element count, different shape: the recycled buffer must carry
	// the new shape.
	b := p.Get(24)
	if len(b.Shape) != 1 || b.Shape[0] != 24 || len(b.Data) != 24 {
		t.Fatalf("recycled Get(24) = shape %v, %d elems", b.Shape, len(b.Data))
	}
	p.Put(b)
	p.Put(nil) // no-op
}

func TestPoolGetInvalidShapePanics(t *testing.T) {
	p := NewPool()
	assertPanics(t, func() { p.Get() }, "empty shape")
	assertPanics(t, func() { p.Get(2, 0) }, "zero dimension")
	assertPanics(t, func() { p.Get(-3) }, "negative dimension")
}

func TestPoolConcurrentUse(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := p.Get(4, 4)
				a.Fill(float32(w))
				for _, v := range a.Data {
					if v != float32(w) {
						t.Errorf("worker %d saw %f", w, v)
						return
					}
				}
				p.Put(a)
			}
		}(w)
	}
	wg.Wait()
}

func TestScratchRoundTrip(t *testing.T) {
	a := GetScratch(3, 3)
	if len(a.Data) != 9 {
		t.Fatalf("GetScratch(3,3) = %d elems", len(a.Data))
	}
	a.Zero()
	PutScratch(a)
	PutScratch(nil)
}

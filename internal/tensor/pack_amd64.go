//go:build amd64

package tensor

// microKernel4x4SSE is the assembly microkernel in pack_amd64.s. It
// performs, per k step and per output element, exactly one single-
// precision multiply and one add in ascending k order — MULPS/ADDPS,
// never fused FMA — so its results are bit-identical to
// microKernel4x4Go; the SIMD lanes only change which elements advance
// together, not any element's op sequence. SSE2 is in the amd64
// baseline, so no runtime feature check is needed.
//
//go:noescape
func microKernel4x4SSE(c *float32, ldc int, ap, bp *float32, kc int)

func microKernel4x4(c []float32, ldc int, ap, bp []float32, kc int) {
	microKernel4x4SSE(&c[0], ldc, &ap[0], &bp[0], kc)
}

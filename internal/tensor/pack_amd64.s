//go:build amd64

#include "textflag.h"

// func microKernel4x4SSE(c *float32, ldc int, ap, bp *float32, kc int)
//
// 4x4 packed GEMM microkernel. X0-X3 hold the four C rows (4 floats
// each) for the whole K block; each k step loads one packed B row,
// broadcasts each packed A value, and does MULPS+ADDPS per row.
// Deliberately no FMA: fused multiply-add rounds once instead of
// twice, which would break bit-identity with the scalar reference.
TEXT ·microKernel4x4SSE(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), SI
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kc+32(FP), CX
	SHLQ $2, SI          // row stride in bytes

	// Load the four C rows into accumulators.
	MOVQ   DI, DX
	MOVUPS (DX), X0
	ADDQ   SI, DX
	MOVUPS (DX), X1
	ADDQ   SI, DX
	MOVUPS (DX), X2
	ADDQ   SI, DX
	MOVUPS (DX), X3

	TESTQ CX, CX
	JE    store

loop:
	MOVUPS (BX), X4      // packed B row: b[p][0..3]

	MOVSS  (AX), X5      // a[0][p]
	SHUFPS $0, X5, X5
	MULPS  X4, X5
	ADDPS  X5, X0

	MOVSS  4(AX), X6     // a[1][p]
	SHUFPS $0, X6, X6
	MULPS  X4, X6
	ADDPS  X6, X1

	MOVSS  8(AX), X7     // a[2][p]
	SHUFPS $0, X7, X7
	MULPS  X4, X7
	ADDPS  X7, X2

	MOVSS  12(AX), X8    // a[3][p]
	SHUFPS $0, X8, X8
	MULPS  X4, X8
	ADDPS  X8, X3

	ADDQ $16, AX
	ADDQ $16, BX
	DECQ CX
	JNE  loop

store:
	MOVQ   DI, DX
	MOVUPS X0, (DX)
	ADDQ   SI, DX
	MOVUPS X1, (DX)
	ADDQ   SI, DX
	MOVUPS X2, (DX)
	ADDQ   SI, DX
	MOVUPS X3, (DX)
	RET

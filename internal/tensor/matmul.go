package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// The three matrix-multiply kernels below share one contract: the work is
// partitioned ONLY across independent output rows, and every output
// element accumulates its products in the same order as the reference
// triple loop (the shared inner dimension is always walked 0..k-1 with a
// single accumulator). Parallelism and register blocking therefore change
// which elements are computed when, but never the floating-point result:
// optimized and reference kernels are bit-identical.
//
// The historical kernels skipped multiplications where the A element was
// zero. On dense training data that branch mispredicts once per multiply
// and saves nothing, so it is gone; because every accumulator starts at
// +0 and x + (±0*b) == x in round-to-nearest for every finite partial sum
// x the kernels can produce, removing the skip does not change results
// either (see TestZeroSkipRemovalBitIdentical).

// parallelThreshold is the flop count below which kernels run
// single-threaded: under it, goroutine startup costs more than the math.
const parallelThreshold = 1 << 16

// parallelRows runs kernel over [0, m) output rows, splitting the range
// across GOMAXPROCS workers when the problem is worth it.
func parallelRows(m, flops int, kernel func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers <= 1 || m <= 1 {
		kernel(0, m)
		return
	}
	if workers > m {
		workers = m
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		r1 := r0 + chunk
		if r1 > m {
			r1 = m
		}
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			kernel(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), returning
// a new m×n tensor.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMul needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	c := MustNew(a.Shape[0], b.Shape[1])
	if err := MatMulInto(c, a, b); err != nil {
		return nil, err
	}
	return c, nil
}

// MatMulInto computes C = A·B into dst, which must be m×n and must not
// overlap A or B. The inner loops stream rows of B with four output rows
// blocked in registers, and rows of the output are distributed across
// GOMAXPROCS workers for large problems.
func MatMulInto(dst, a, b *Tensor) error {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return fmt.Errorf("tensor: MatMul needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: MatMul inner dims differ: %v × %v", a.Shape, b.Shape)
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		return fmt.Errorf("tensor: MatMul dst shape %v, want [%d %d]", dst.Shape, m, n)
	}
	statGEMMCalls.Add(1)
	if usePacked(m, n, k) {
		matMulPacked(dst, a, b, m, n, k, false, false)
		return nil
	}
	parallelRows(m, m*n*k, func(r0, r1 int) {
		seg := dst.Data[r0*n : r1*n]
		for i := range seg {
			seg[i] = 0
		}
		i := r0
		for ; i+4 <= r1; i += 4 {
			a0 := a.Data[i*k : (i+1)*k]
			a1 := a.Data[(i+1)*k : (i+2)*k]
			a2 := a.Data[(i+2)*k : (i+3)*k]
			a3 := a.Data[(i+3)*k : (i+4)*k]
			c0 := dst.Data[i*n : (i+1)*n]
			c1 := dst.Data[(i+1)*n : (i+2)*n]
			c2 := dst.Data[(i+2)*n : (i+3)*n]
			c3 := dst.Data[(i+3)*n : (i+4)*n]
			for p := 0; p < k; p++ {
				av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
				bp := b.Data[p*n : (p+1)*n]
				for j, bv := range bp {
					c0[j] += av0 * bv
					c1[j] += av1 * bv
					c2[j] += av2 * bv
					c3[j] += av3 * bv
				}
			}
		}
		for ; i < r1; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := dst.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ai[p]
				bp := b.Data[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
	return nil
}

// MatMulTransA computes C = Aᵀ·B where A is (k×m) and B is (k×n): the
// backward-pass shape for computing weight gradients without
// materializing transposes.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransA needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	c := MustNew(a.Shape[1], b.Shape[1])
	if err := MatMulTransAInto(c, a, b); err != nil {
		return nil, err
	}
	return c, nil
}

// MatMulTransAInto computes C = Aᵀ·B into dst, which must be m×n and must
// not overlap A or B. The shared dimension stays the outer loop (as in
// the reference kernel) so B rows stream sequentially; output rows are
// partitioned across workers with four blocked in registers.
func MatMulTransAInto(dst, a, b *Tensor) error {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return fmt.Errorf("tensor: MatMulTransA needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: MatMulTransA outer dims differ: %v × %v", a.Shape, b.Shape)
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		return fmt.Errorf("tensor: MatMulTransA dst shape %v, want [%d %d]", dst.Shape, m, n)
	}
	statGEMMCalls.Add(1)
	if usePacked(m, n, k) {
		matMulPacked(dst, a, b, m, n, k, true, false)
		return nil
	}
	parallelRows(m, m*n*k, func(r0, r1 int) {
		seg := dst.Data[r0*n : r1*n]
		for i := range seg {
			seg[i] = 0
		}
		for p := 0; p < k; p++ {
			ap := a.Data[p*m : (p+1)*m]
			bp := b.Data[p*n : (p+1)*n]
			i := r0
			for ; i+4 <= r1; i += 4 {
				av0, av1, av2, av3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
				c0 := dst.Data[i*n : (i+1)*n]
				c1 := dst.Data[(i+1)*n : (i+2)*n]
				c2 := dst.Data[(i+2)*n : (i+3)*n]
				c3 := dst.Data[(i+3)*n : (i+4)*n]
				for j, bv := range bp {
					c0[j] += av0 * bv
					c1[j] += av1 * bv
					c2[j] += av2 * bv
					c3[j] += av3 * bv
				}
			}
			for ; i < r1; i++ {
				av := ap[i]
				ci := dst.Data[i*n : (i+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	})
	return nil
}

// MatMulTransB computes C = A·Bᵀ where A is (m×k) and B is (n×k): the
// backward-pass shape for propagating gradients to a layer's input.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransB needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	c := MustNew(a.Shape[0], b.Shape[0])
	if err := MatMulTransBInto(c, a, b); err != nil {
		return nil, err
	}
	return c, nil
}

// MatMulTransBInto computes C = A·Bᵀ into dst, which must be m×n and must
// not overlap A or B. Every output element is an independent dot product,
// so rows are partitioned across workers and four columns are computed
// per pass with accumulators held in registers.
func MatMulTransBInto(dst, a, b *Tensor) error {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return fmt.Errorf("tensor: MatMulTransB needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: MatMulTransB inner dims differ: %v × %v", a.Shape, b.Shape)
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		return fmt.Errorf("tensor: MatMulTransB dst shape %v, want [%d %d]", dst.Shape, m, n)
	}
	statGEMMCalls.Add(1)
	if usePacked(m, n, k) {
		matMulPacked(dst, a, b, m, n, k, false, true)
		return nil
	}
	parallelRows(m, m*n*k, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := dst.Data[i*n : (i+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				b0 := b.Data[j*k : (j+1)*k]
				b1 := b.Data[(j+1)*k : (j+2)*k]
				b2 := b.Data[(j+2)*k : (j+3)*k]
				b3 := b.Data[(j+3)*k : (j+4)*k]
				var s0, s1, s2, s3 float32
				for p, av := range ai {
					s0 += av * b0[p]
					s1 += av * b1[p]
					s2 += av * b2[p]
					s3 += av * b3[p]
				}
				ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
			}
			for ; j < n; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var sum float32
				for p, av := range ai {
					sum += av * bj[p]
				}
				ci[j] = sum
			}
		}
	})
	return nil
}

// MatMulTransBFoldInto computes C = A·Bᵀ into dst like MatMulTransBInto,
// but with the shared dimension split into segments of segLen elements
// and a separate accumulator per segment, folded together in segment
// order. This reproduces — bit for bit — the float ordering of computing
// A·Bᵀ over each segment separately and summing the partial results,
// which is how a per-sample backward pass accumulates a batch's weight
// gradient. A (m×K) and B (n×K) must share K, K must be a multiple of
// segLen, and dst (m×n) must not overlap A or B.
func MatMulTransBFoldInto(dst, a, b *Tensor, segLen int) error {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return fmt.Errorf("tensor: MatMulTransBFold needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: MatMulTransBFold inner dims differ: %v × %v", a.Shape, b.Shape)
	}
	if segLen <= 0 || k%segLen != 0 {
		return fmt.Errorf("tensor: MatMulTransBFold segment length %d must divide inner dim %d", segLen, k)
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		return fmt.Errorf("tensor: MatMulTransBFold dst shape %v, want [%d %d]", dst.Shape, m, n)
	}
	statGEMMCalls.Add(1)
	parallelRows(m, m*n*k, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := dst.Data[i*n : (i+1)*n]
			j := 0
			for ; j+4 <= n; j += 4 {
				b0 := b.Data[j*k : (j+1)*k]
				b1 := b.Data[(j+1)*k : (j+2)*k]
				b2 := b.Data[(j+2)*k : (j+3)*k]
				b3 := b.Data[(j+3)*k : (j+4)*k]
				var t0, t1, t2, t3 float32
				for off := 0; off < k; off += segLen {
					var s0, s1, s2, s3 float32
					for p := off; p < off+segLen; p++ {
						av := ai[p]
						s0 += av * b0[p]
						s1 += av * b1[p]
						s2 += av * b2[p]
						s3 += av * b3[p]
					}
					t0 += s0
					t1 += s1
					t2 += s2
					t3 += s3
				}
				ci[j], ci[j+1], ci[j+2], ci[j+3] = t0, t1, t2, t3
			}
			for ; j < n; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var total float32
				for off := 0; off < k; off += segLen {
					var sum float32
					for p := off; p < off+segLen; p++ {
						sum += ai[p] * bj[p]
					}
					total += sum
				}
				ci[j] = total
			}
		}
	})
	return nil
}

package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), returning
// a new m×n tensor. The inner loops are written j-innermost over B's rows
// so the compiler keeps accesses sequential, and rows of the output are
// distributed across GOMAXPROCS workers for large problems.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMul needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dims differ: %v × %v", a.Shape, b.Shape)
	}
	c := MustNew(m, n)
	mulRows := func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b.Data[p*n : (p+1)*n]
				for j := range bp {
					ci[j] += av * bp[j]
				}
			}
		}
	}
	const parallelThreshold = 1 << 16 // flops below this run single-threaded
	if m*n*k < parallelThreshold {
		mulRows(0, m)
		return c, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		r1 := r0 + chunk
		if r1 > m {
			r1 = m
		}
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			mulRows(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
	return c, nil
}

// MatMulTransA computes C = Aᵀ·B where A is (k×m) and B is (k×n): the
// backward-pass shape for computing weight gradients without
// materializing transposes.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransA needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMulTransA outer dims differ: %v × %v", a.Shape, b.Shape)
	}
	c := MustNew(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.Data[i*n : (i+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
	return c, nil
}

// MatMulTransB computes C = A·Bᵀ where A is (m×k) and B is (n×k): the
// backward-pass shape for propagating gradients to a layer's input.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransB needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMulTransB inner dims differ: %v × %v", a.Shape, b.Shape)
	}
	c := MustNew(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var sum float32
			for p := range ai {
				sum += ai[p] * bj[p]
			}
			ci[j] = sum
		}
	}
	return c, nil
}

//go:build !amd64

package tensor

func microKernel4x4(c []float32, ldc int, ap, bp []float32, kc int) {
	microKernel4x4Go(c, ldc, ap, bp, kc)
}

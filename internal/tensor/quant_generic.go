//go:build !amd64

package tensor

func qMicroKernel4x4(dst []float32, ldc int, ap, bp []int16, kp int, scale float32) {
	qMicroKernel4x4Go(dst, ldc, ap, bp, kp, scale)
}

package tensor

import (
	"sync"
	"sync/atomic"
)

// Panel buffers for the packed GEMM. These are raw []float32 scratch —
// not Tensors — keyed by capacity bucket, separate from the f32 tensor
// Pool so GEMM packing never competes with layer activations for the
// same buckets. getPanel counts pool reuses ("packed-panel cache hits"
// in /metricsz terms): in steady state every large GEMM should hit.

var panelBuckets sync.Map // int (capacity) -> *sync.Pool

type panelBox struct{ buf []float32 }

// getPanel returns a float32 scratch buffer with at least n elements.
// Contents are undefined; pack routines overwrite every slot they read.
func getPanel(n int) *panelBox {
	// Round capacities to 4K-element buckets so nearby blockings share.
	bcap := roundUp(n, 4096)
	p, ok := panelBuckets.Load(bcap)
	if !ok {
		p, _ = panelBuckets.LoadOrStore(bcap, &sync.Pool{})
	}
	if box, ok := p.(*sync.Pool).Get().(*panelBox); ok {
		statPanelReuses.Add(1)
		return box
	}
	statPanelPacks.Add(1)
	return &panelBox{buf: make([]float32, bcap)}
}

func putPanel(b *panelBox) {
	p, ok := panelBuckets.Load(len(b.buf))
	if !ok {
		p, _ = panelBuckets.LoadOrStore(len(b.buf), &sync.Pool{})
	}
	p.(*sync.Pool).Put(b)
}

// Compute counters: process-wide atomics the serving layer snapshots for
// /metricsz. Cheap enough to leave always-on (one atomic add per GEMM /
// panel acquisition, not per element).
var (
	statGEMMCalls   atomic.Uint64
	statQGEMMCalls  atomic.Uint64
	statPanelReuses atomic.Uint64
	statPanelPacks  atomic.Uint64
)

// ComputeStats is a snapshot of the tensor package's compute counters.
type ComputeStats struct {
	// GEMMCalls counts f32 GEMM kernel invocations (all variants).
	GEMMCalls uint64 `json:"gemm_calls"`
	// QuantizedGEMMCalls counts int8 GEMM kernel invocations.
	QuantizedGEMMCalls uint64 `json:"quantized_gemm_calls"`
	// PanelReuses counts packed-panel buffers served from the panel
	// pool (cache hits); PanelAllocs counts fresh allocations.
	PanelReuses uint64 `json:"panel_reuses"`
	PanelAllocs uint64 `json:"panel_allocs"`
}

// Stats snapshots the process-wide compute counters.
func Stats() ComputeStats {
	return ComputeStats{
		GEMMCalls:          statGEMMCalls.Load(),
		QuantizedGEMMCalls: statQGEMMCalls.Load(),
		PanelReuses:        statPanelReuses.Load(),
		PanelAllocs:        statPanelPacks.Load(),
	}
}

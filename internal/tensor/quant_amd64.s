//go:build amd64

#include "textflag.h"

// func qMicroKernel4x4SSE(dst *float32, ldc int, ap, bp *int16, kp int, scale float32)
//
// 4x4 int8 GEMM microkernel over pair-interleaved int16 panels. Each k
// pair step loads 8 packed A values (4 rows x 2 k) and 8 packed B values
// (4 cols x 2 k); PSHUFL broadcasts one row's pair across the vector and
// PMADDWL multiplies and adds adjacent pairs into 4 int32 lanes — the
// exact integer sums the portable kernel computes. The epilogue converts
// to float32 and multiplies by the combined scale.
TEXT ·qMicroKernel4x4SSE(SB), NOSPLIT, $0-44
	MOVQ dst+0(FP), DI
	MOVQ ldc+8(FP), SI
	MOVQ ap+16(FP), AX
	MOVQ bp+24(FP), BX
	MOVQ kp+32(FP), CX
	SHLQ $2, SI          // row stride in bytes

	PXOR X0, X0          // row accumulators
	PXOR X1, X1
	PXOR X2, X2
	PXOR X3, X3

	TESTQ CX, CX
	JE    store

loop:
	MOVOU (AX), X4       // [a0p a0p' a1p a1p' a2p a2p' a3p a3p']
	MOVOU (BX), X5       // [b(p,j0) b(p',j0) ... b(p,j3) b(p',j3)]

	PSHUFL $0x00, X4, X6 // row 0 pair broadcast
	PMADDWL X5, X6
	PADDL  X6, X0

	PSHUFL $0x55, X4, X7 // row 1
	PMADDWL X5, X7
	PADDL  X7, X1

	PSHUFL $0xAA, X4, X6 // row 2
	PMADDWL X5, X6
	PADDL  X6, X2

	PSHUFL $0xFF, X4, X7 // row 3
	PMADDWL X5, X7
	PADDL  X7, X3

	ADDQ $16, AX
	ADDQ $16, BX
	DECQ CX
	JNE  loop

store:
	MOVSS  scale+40(FP), X5
	SHUFPS $0, X5, X5

	CVTPL2PS X0, X0      // int32 -> float32, round to nearest
	MULPS    X5, X0
	CVTPL2PS X1, X1
	MULPS    X5, X1
	CVTPL2PS X2, X2
	MULPS    X5, X2
	CVTPL2PS X3, X3
	MULPS    X5, X3

	MOVQ   DI, DX
	MOVUPS X0, (DX)
	ADDQ   SI, DX
	MOVUPS X1, (DX)
	ADDQ   SI, DX
	MOVUPS X2, (DX)
	ADDQ   SI, DX
	MOVUPS X3, (DX)
	RET

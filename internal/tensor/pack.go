package tensor

import (
	"sync"
	"time"
)

// Cache-tiled packed GEMM. The three public MatMul*Into kernels route
// large problems here: A and B panels are repacked into contiguous
// microkernel-order buffers sized to the cache blocking chosen by a
// one-shot runtime probe, and an MRxNR register-blocked microkernel
// walks the packed strips. Packing buffers cycle through a dedicated
// panel pool (see panelbuf.go), so steady-state GEMMs allocate nothing.
//
// Bit-identity discipline (the contract shared with matmul.go): every
// output element owns a single running sum that accumulates its products
// in ascending shared-dimension order. The microkernel loads that sum
// from C into a register at the start of each K block, adds the block's
// products one at a time in p order, and stores it back — the same
// floating-point op sequence as the reference triple loop, so packing
// and tiling change memory traffic but never results. Ragged tiles are
// zero-padded in the packed panels; a padded lane only ever adds ±0 to a
// +0 accumulator that is never stored, so padding is unobservable.

const (
	// gemmMR x gemmNR is the microkernel tile: gemmMR*gemmNR running
	// sums held in registers while one packed K block streams through.
	gemmMR = 4
	gemmNR = 4

	// packedMinFlops is the M*N*K volume below which the register-blocked
	// streaming kernels in matmul.go win (packing cost is not amortized).
	packedMinFlops = 1 << 17
	// packedMinK and packedMinN gate degenerate shapes where panels would
	// be all tail: skinny problems stay on the streaming kernels.
	packedMinK = 8
	packedMinN = 8
)

// gemmBlocks are the cache-blocking sizes: the packed A panel is mc x kc
// (sized for L1), the packed B panel kc x nc (sized for L2).
type gemmBlocks struct{ mc, kc, nc int }

// blockCandidates are the probe's menu. mc is a multiple of gemmMR and
// nc of gemmNR so full panels have no ragged strips; kc trades K-loop
// amortization against panel footprint (mc*kc floats should sit in L1).
var blockCandidates = []gemmBlocks{
	{mc: 64, kc: 128, nc: 256},
	{mc: 32, kc: 256, nc: 256},
	{mc: 128, kc: 128, nc: 256},
	{mc: 64, kc: 256, nc: 128},
}

var (
	blockOnce   sync.Once
	chosenBlock gemmBlocks
)

// gemmBlockSizes returns the process-wide blocking, probing once. The
// probe times a small packed GEMM per candidate and keeps the fastest —
// a few milliseconds, paid on the first large multiply. Block choice
// affects speed only, never results, so a noisy probe is harmless.
func gemmBlockSizes() gemmBlocks {
	blockOnce.Do(func() {
		chosenBlock = probeBlocks()
	})
	return chosenBlock
}

// GEMMBlocks reports the cache-blocking sizes the packed kernels are
// using (probing on first call): the mc x kc A panel, kc x nc B panel.
func GEMMBlocks() (mc, kc, nc int) {
	b := gemmBlockSizes()
	return b.mc, b.kc, b.nc
}

// probeBlocks times one mid-sized packed multiply per candidate.
func probeBlocks() gemmBlocks {
	const probeDim = 160
	a := MustNew(probeDim, probeDim)
	b := MustNew(probeDim, probeDim)
	dst := MustNew(probeDim, probeDim)
	for i := range a.Data {
		a.Data[i] = float32(i%17) * 0.25
		b.Data[i] = float32(i%11) * 0.5
	}
	best := blockCandidates[0]
	bestTime := time.Duration(1<<63 - 1)
	for _, cand := range blockCandidates {
		// One warm-up fills the panel pool so every candidate pays the
		// same allocation cost; then time the better of two runs.
		packedSerial(dst, a, b, 0, probeDim, cand, false, false)
		elapsed := time.Duration(1<<63 - 1)
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			packedSerial(dst, a, b, 0, probeDim, cand, false, false)
			if d := time.Since(start); d < elapsed {
				elapsed = d
			}
		}
		if elapsed < bestTime {
			bestTime, best = elapsed, cand
		}
	}
	return best
}

// usePacked decides kernel routing from shape alone (deterministic; both
// paths are bit-identical, so this is purely a performance choice).
func usePacked(m, n, k int) bool {
	return k >= packedMinK && n >= packedMinN && m*n*k >= packedMinFlops
}

// matMulPacked computes dst += 0-initialized A·B (with optional logical
// transposes) through the packed tiled kernel, partitioning output rows
// across GOMAXPROCS workers. A is m x k after transA, B is k x n after
// transB, dst is m x n and is fully overwritten.
func matMulPacked(dst, a, b *Tensor, m, n, k int, transA, transB bool) {
	bs := gemmBlockSizes()
	parallelRowsAligned(m, m*n*k, gemmMR, func(r0, r1 int) {
		packedSerial(dst, a, b, r0, r1, bs, transA, transB)
	})
}

// parallelRowsAligned is parallelRows with worker chunks rounded up to a
// multiple of align, so only the final worker sees a ragged strip edge.
func parallelRowsAligned(m, flops, align int, kernel func(r0, r1 int)) {
	parallelRows((m+align-1)/align, flops, func(c0, c1 int) {
		r0, r1 := c0*align, c1*align
		if r1 > m {
			r1 = m
		}
		if r0 < r1 {
			kernel(r0, r1)
		}
	})
}

// packedSerial runs the blocked loop nest over output rows [r0, r1).
// Loop order is the BLIS nest: jc (N blocks) → pc (K blocks, ascending —
// the bit-identity requirement) → pack B → ic (M blocks) → pack A →
// microkernel sweep. Each call owns its packed panels, so concurrent
// workers never share pack buffers.
func packedSerial(dst, a, b *Tensor, r0, r1 int, bs gemmBlocks, transA, transB bool) {
	m := r1 - r0
	n := dst.Shape[1]
	var k int
	if transA {
		k = a.Shape[0]
	} else {
		k = a.Shape[1]
	}
	seg := dst.Data[r0*n : r1*n]
	for i := range seg {
		seg[i] = 0
	}
	if k == 0 {
		return
	}
	mc, kc, nc := bs.mc, bs.kc, bs.nc
	if mc > m {
		mc = roundUp(m, gemmMR)
	}
	if kc > k {
		kc = k
	}
	if nc > n {
		nc = roundUp(n, gemmNR)
	}
	apBox := getPanel(mc * kc)
	bpBox := getPanel(roundUp(nc, gemmNR) * kc)
	defer putPanel(apBox)
	defer putPanel(bpBox)
	ap, bp := apBox.buf, bpBox.buf
	for jc := 0; jc < n; jc += nc {
		ncEff := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcEff := min(kc, k-pc)
			if transB {
				packBTrans(bp, b, pc, kcEff, jc, ncEff)
			} else {
				packBNormal(bp, b, pc, kcEff, jc, ncEff)
			}
			for ic := r0; ic < r1; ic += mc {
				mcEff := min(mc, r1-ic)
				if transA {
					packATrans(ap, a, ic, mcEff, pc, kcEff)
				} else {
					packANormal(ap, a, ic, mcEff, pc, kcEff)
				}
				packedCompute(dst, ic, jc, n, ap, bp, mcEff, ncEff, kcEff)
			}
		}
	}
}

// packedCompute sweeps the microkernel over one packed A panel x packed
// B panel pair, accumulating into dst.
func packedCompute(dst *Tensor, ic, jc, ldc int, ap, bp []float32, mc, nc, kc int) {
	for jr := 0; jr < nc; jr += gemmNR {
		cols := min(gemmNR, nc-jr)
		bstrip := bp[(jr/gemmNR)*gemmNR*kc:]
		for ir := 0; ir < mc; ir += gemmMR {
			rows := min(gemmMR, mc-ir)
			astrip := ap[(ir/gemmMR)*gemmMR*kc:]
			cbase := (ic+ir)*ldc + jc + jr
			if rows == gemmMR && cols == gemmNR {
				microKernel4x4(dst.Data[cbase:], ldc, astrip, bstrip, kc)
			} else {
				microKernelEdge(dst.Data[cbase:], ldc, astrip, bstrip, kc, rows, cols)
			}
		}
	}
}

// microKernel4x4Go is the portable register-blocked core: 16 running
// sums accumulate while one packed K block streams through. ap holds
// gemmMR A values per k step, bp gemmNR B values per k step, both
// contiguous; fixed-width slicing drops bounds checks. On amd64 the
// SSE kernel in pack_amd64.s replaces it (same op-for-op float
// sequence, so the two are bit-identical — see the property tests);
// this version remains the reference and the non-amd64 implementation.
func microKernel4x4Go(c []float32, ldc int, ap, bp []float32, kc int) {
	c0 := c[0*ldc : 0*ldc+4 : 0*ldc+4]
	c1 := c[1*ldc : 1*ldc+4 : 1*ldc+4]
	c2 := c[2*ldc : 2*ldc+4 : 2*ldc+4]
	c3 := c[3*ldc : 3*ldc+4 : 3*ldc+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	c20, c21, c22, c23 := c2[0], c2[1], c2[2], c2[3]
	c30, c31, c32, c33 := c3[0], c3[1], c3[2], c3[3]
	ap = ap[: 4*kc : 4*kc]
	bp = bp[: 4*kc : 4*kc]
	for p := 0; p < kc; p++ {
		a := ap[4*p : 4*p+4 : 4*p+4]
		bv := bp[4*p : 4*p+4 : 4*p+4]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		a0 := a[0]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		a1 := a[1]
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a2 := a[2]
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		a3 := a[3]
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
	c2[0], c2[1], c2[2], c2[3] = c20, c21, c22, c23
	c3[0], c3[1], c3[2], c3[3] = c30, c31, c32, c33
}

// microKernelEdge handles ragged tiles (rows < gemmMR or cols < gemmNR):
// valid lanes load their running sum from C, padded lanes run on zeros
// and are never stored back.
func microKernelEdge(c []float32, ldc int, ap, bp []float32, kc, rows, cols int) {
	var acc [gemmMR][gemmNR]float32
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			acc[r][j] = c[r*ldc+j]
		}
	}
	for p := 0; p < kc; p++ {
		a := ap[4*p : 4*p+4 : 4*p+4]
		bv := bp[4*p : 4*p+4 : 4*p+4]
		for r := 0; r < gemmMR; r++ {
			ar := a[r]
			acc[r][0] += ar * bv[0]
			acc[r][1] += ar * bv[1]
			acc[r][2] += ar * bv[2]
			acc[r][3] += ar * bv[3]
		}
	}
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			c[r*ldc+j] = acc[r][j]
		}
	}
}

// packANormal packs rows [i0,i0+mc) x cols [p0,p0+kc) of row-major A
// (lda = A.Shape[1]) into gemmMR-row strips: strip s holds rows
// i0+s*MR.., laid out k-major so the microkernel reads gemmMR contiguous
// A values per k step. Ragged final strips pad with zeros.
func packANormal(dst []float32, a *Tensor, i0, mc, p0, kc int) {
	lda := a.Shape[1]
	di := 0
	for ir := 0; ir < mc; ir += gemmMR {
		rows := min(gemmMR, mc-ir)
		for r := 0; r < rows; r++ {
			src := a.Data[(i0+ir+r)*lda+p0 : (i0+ir+r)*lda+p0+kc]
			d := di + r
			for p, v := range src {
				dst[d+p*gemmMR] = v
			}
		}
		for r := rows; r < gemmMR; r++ {
			d := di + r
			for p := 0; p < kc; p++ {
				dst[d+p*gemmMR] = 0
			}
		}
		di += gemmMR * kc
	}
}

// packATrans packs the same logical panel when A is stored transposed
// (k x m, logical A[i][p] = a.Data[p*m+i]): each k step reads gemmMR
// contiguous elements of a stored row — the transpose happens during
// packing, not in the inner loop.
func packATrans(dst []float32, a *Tensor, i0, mc, p0, kc int) {
	lda := a.Shape[1]
	di := 0
	for ir := 0; ir < mc; ir += gemmMR {
		rows := min(gemmMR, mc-ir)
		for p := 0; p < kc; p++ {
			src := a.Data[(p0+p)*lda+i0+ir : (p0+p)*lda+i0+ir+rows]
			d := di + p*gemmMR
			for r, v := range src {
				dst[d+r] = v
			}
			for r := rows; r < gemmMR; r++ {
				dst[d+r] = 0
			}
		}
		di += gemmMR * kc
	}
}

// packBNormal packs rows [p0,p0+kc) x cols [j0,j0+nc) of row-major B
// (ldb = B.Shape[1]) into gemmNR-column strips, k-major.
func packBNormal(dst []float32, b *Tensor, p0, kc, j0, nc int) {
	ldb := b.Shape[1]
	di := 0
	for jr := 0; jr < nc; jr += gemmNR {
		cols := min(gemmNR, nc-jr)
		for p := 0; p < kc; p++ {
			src := b.Data[(p0+p)*ldb+j0+jr : (p0+p)*ldb+j0+jr+cols]
			d := di + p*gemmNR
			for j, v := range src {
				dst[d+j] = v
			}
			for j := cols; j < gemmNR; j++ {
				dst[d+j] = 0
			}
		}
		di += gemmNR * kc
	}
}

// packBTrans packs the same logical panel when B is stored transposed
// (n x k, logical B[p][j] = b.Data[j*k+p]): stored rows are contiguous
// in k, so each packed column reads one contiguous run.
func packBTrans(dst []float32, b *Tensor, p0, kc, j0, nc int) {
	ldb := b.Shape[1]
	di := 0
	for jr := 0; jr < nc; jr += gemmNR {
		cols := min(gemmNR, nc-jr)
		for jj := 0; jj < cols; jj++ {
			src := b.Data[(j0+jr+jj)*ldb+p0 : (j0+jr+jj)*ldb+p0+kc]
			d := di + jj
			for p, v := range src {
				dst[d+p*gemmNR] = v
			}
		}
		for jj := cols; jj < gemmNR; jj++ {
			d := di + jj
			for p := 0; p < kc; p++ {
				dst[d+p*gemmNR] = 0
			}
		}
		di += gemmNR * kc
	}
}

func roundUp(v, to int) int { return (v + to - 1) / to * to }

package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property suite for the packed tiled GEMM: across adversarial shapes
// (every M,N,K from propertyDims — primes, powers of two, and their
// neighbors, so every ragged-tile tail arises) and all three transpose
// variants, the packed kernel must be BIT-identical to the naive
// reference, not epsilon-close. The packed core is driven directly with
// deliberately tiny cache blockings so block boundaries land mid-matrix
// in many alignments, independent of what the runtime probe picked.

var propertyDims = []int{1, 2, 3, 5, 7, 9, 13, 17, 31, 33, 63, 64, 65, 127, 128, 129}

// tinyBlocks forces many tile boundaries inside even small matrices.
var tinyBlocks = []gemmBlocks{
	{mc: gemmMR, kc: 3, nc: gemmNR},
	{mc: 8, kc: 8, nc: 8},
	{mc: 12, kc: 16, nc: 20},
	{mc: 64, kc: 128, nc: 256},
}

// packedVariant runs the packed core serially over all rows with the
// given blocking, mirroring what matMulPacked does per worker.
func packedVariant(dst, a, b *Tensor, bs gemmBlocks, transA, transB bool) {
	packedSerial(dst, a, b, 0, dst.Shape[0], bs, transA, transB)
}

func randFilled(rng *rand.Rand, dims ...int) *Tensor {
	t := MustNew(dims...)
	fillMixed(t, rng)
	return t
}

func TestPackedGEMMPropertyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// The full cross product of propertyDims³ x blockings is too slow;
	// sweep all (m,n) pairs against a rotating k (coverage of every
	// dimension value in every role) plus the full diagonal.
	type shape struct{ m, n, k int }
	var shapes []shape
	for i, m := range propertyDims {
		for j, n := range propertyDims {
			k := propertyDims[(i+j)%len(propertyDims)]
			shapes = append(shapes, shape{m, n, k})
		}
	}
	for _, d := range propertyDims {
		shapes = append(shapes, shape{d, d, d})
	}
	for _, s := range shapes {
		a := randFilled(rng, s.m, s.k)
		b := randFilled(rng, s.k, s.n)
		at := randFilled(rng, s.k, s.m)
		bt := randFilled(rng, s.n, s.k)
		got := MustNew(s.m, s.n)

		want := refMatMul(a, b)
		for _, bs := range tinyBlocks {
			got.Fill(42) // stale contents must not leak through
			packedVariant(got, a, b, bs, false, false)
			assertBitIdentical(t, fmt.Sprintf("packed %dx%dx%d blocks %+v", s.m, s.n, s.k, bs), got, want)
		}

		want = refMatMulTransA(at, b)
		for _, bs := range tinyBlocks {
			got.Fill(42)
			packedVariant(got, at, b, bs, true, false)
			assertBitIdentical(t, fmt.Sprintf("packedTransA %dx%dx%d blocks %+v", s.m, s.n, s.k, bs), got, want)
		}

		want = refMatMulTransB(a, bt)
		for _, bs := range tinyBlocks {
			got.Fill(42)
			packedVariant(got, a, bt, bs, false, true)
			assertBitIdentical(t, fmt.Sprintf("packedTransB %dx%dx%d blocks %+v", s.m, s.n, s.k, bs), got, want)
		}
	}
}

// TestPackedGEMMPublicRoutingBitIdentical checks the public entry points
// (which route between the streaming and packed kernels by shape) on the
// same adversarial dimensions, so whichever kernel the router picks must
// match the reference bit for bit.
func TestPackedGEMMPublicRoutingBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range propertyDims {
		for _, k := range []int{1, 7, 64, 129} {
			a := randFilled(rng, d, k)
			b := randFilled(rng, k, d)
			at := randFilled(rng, k, d)
			bt := randFilled(rng, d, k)
			got := MustNew(d, d)

			want := refMatMul(a, b)
			if err := MatMulInto(got, a, b); err != nil {
				t.Fatalf("MatMulInto %dx%dx%d: %v", d, d, k, err)
			}
			assertBitIdentical(t, fmt.Sprintf("route MatMul %dx%dx%d", d, d, k), got, want)

			want = refMatMulTransA(at, b)
			if err := MatMulTransAInto(got, at, b); err != nil {
				t.Fatalf("MatMulTransAInto %dx%dx%d: %v", d, d, k, err)
			}
			assertBitIdentical(t, fmt.Sprintf("route TransA %dx%dx%d", d, d, k), got, want)

			want = refMatMulTransB(a, bt)
			if err := MatMulTransBInto(got, a, bt); err != nil {
				t.Fatalf("MatMulTransBInto %dx%dx%d: %v", d, d, k, err)
			}
			assertBitIdentical(t, fmt.Sprintf("route TransB %dx%dx%d", d, d, k), got, want)
		}
	}
}

// TestPackedGEMMDegenerate covers K=0 (empty inner dimension: output
// must be all zeros, no panic) and 1xN / Mx1 panels through the packed
// core. Tensor.New rejects zero dims, so K=0 operands are built by hand.
func TestPackedGEMMDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, mn := range [][2]int{{1, 9}, {9, 1}, {1, 1}, {5, 13}} {
		m, n := mn[0], mn[1]
		a := &Tensor{Shape: []int{m, 0}, Data: nil}
		b := &Tensor{Shape: []int{0, n}, Data: nil}
		dst := randFilled(rng, m, n)
		packedVariant(dst, a, b, tinyBlocks[0], false, false)
		for i, v := range dst.Data {
			if v != 0 {
				t.Fatalf("K=0 %dx%d: dst[%d] = %v, want 0", m, n, i, v)
			}
		}
	}
	// 1xN and Mx1 with a real K: maximally ragged microkernel tiles.
	for _, s := range [][3]int{{1, 37, 11}, {37, 1, 11}, {1, 1, 129}, {2, 3, 1}} {
		m, n, k := s[0], s[1], s[2]
		a := randFilled(rng, m, k)
		b := randFilled(rng, k, n)
		want := refMatMul(a, b)
		got := MustNew(m, n)
		for _, bs := range tinyBlocks {
			got.Fill(-7)
			packedVariant(got, a, b, bs, false, false)
			assertBitIdentical(t, fmt.Sprintf("degenerate %dx%dx%d blocks %+v", m, n, k, bs), got, want)
		}
	}
}

// TestMicroKernelAsmMatchesGo pins the amd64 assembly microkernel to the
// portable Go one on identical packed inputs: same op sequence per
// element, so bit-equal outputs. On non-amd64 the two are one function
// and the test is a tautology, which is fine.
func TestMicroKernelAsmMatchesGo(t *testing.T) {
	for _, kc := range []int{1, 2, 3, 7, 64, 255} {
		ap := make([]float32, gemmMR*kc)
		bp := make([]float32, gemmNR*kc)
		for i := range ap {
			ap[i] = float32(i%13)*0.375 - 2
		}
		for i := range bp {
			bp[i] = float32(i%11)*0.4375 - 1.5
		}
		const ldc = 6 // wider than NR: strided C rows
		cGo := MustNew(gemmMR, ldc)
		rng := rand.New(rand.NewSource(int64(kc)))
		fillMixed(cGo, rng)
		cAsm := cGo.Clone()
		microKernel4x4Go(cGo.Data, ldc, ap, bp, kc)
		microKernel4x4(cAsm.Data, ldc, ap, bp, kc)
		assertBitIdentical(t, fmt.Sprintf("microkernel kc=%d", kc), cAsm, cGo)
	}
}

// FuzzPackedGEMM lets the fuzzer pick shapes and a data seed; the packed
// kernel must stay bit-identical to the reference for every corpus and
// generated input.
func FuzzPackedGEMM(f *testing.F) {
	f.Add(3, 5, 7, int64(1))
	f.Add(129, 1, 64, int64(2))
	f.Add(16, 16, 16, int64(3))
	f.Fuzz(func(t *testing.T, m, n, k int, seed int64) {
		if m < 1 || n < 1 || k < 1 || m > 130 || n > 130 || k > 130 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		a := randFilled(rng, m, k)
		b := randFilled(rng, k, n)
		want := refMatMul(a, b)
		got := MustNew(m, n)
		packedVariant(got, a, b, tinyBlocks[1], false, false)
		assertBitIdentical(t, fmt.Sprintf("fuzz %dx%dx%d", m, n, k), got, want)
	})
}

package tensor

import (
	"fmt"
	"testing"
)

// BenchmarkGEMMSizes sweeps the packed kernels across square sizes and
// reports achieved GFLOP/s (for the int8 path, giga-int-ops/s on the
// same 2*M*N*K count, so the two paths are directly comparable). The
// 512 entry is the acceptance gate for the packed f32 kernel: it must
// beat the pre-packing register-blocked kernel by ≥1.3x on the same
// machine (seed baseline recorded in BENCH_pr7.json).
func BenchmarkGEMMSizes(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		a := MustNew(n, n)
		bb := MustNew(n, n)
		dst := MustNew(n, n)
		for i := range a.Data {
			a.Data[i] = float32(i%17) * 0.25
			bb.Data[i] = float32(i%13) * 0.5
		}
		flops := 2 * float64(n) * float64(n) * float64(n)
		b.Run(fmt.Sprintf("f32-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := MatMulInto(dst, a, bb); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
		qa := NewQ(n, n)
		qb := NewQ(n, n)
		for i := range qa.Data {
			qa.Data[i] = int8(i%255 - 127)
			qb.Data[i] = int8((i*7)%255 - 127)
		}
		b.Run(fmt.Sprintf("int8-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := QMatMulInto(dst, qa, qb); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

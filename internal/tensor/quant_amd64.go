//go:build amd64

package tensor

// qMicroKernel4x4SSE is the assembly int8 microkernel in quant_amd64.s:
// PMADDWD over the pair-interleaved int16 panels (two multiply-adds per
// lane per instruction) with int32 accumulators, then CVTDQ2PS+MULPS for
// the float32 store. Integer accumulation is exact, and the final
// convert+multiply per element matches float32(acc)*scale in Go, so the
// asm and Go kernels agree bit-for-bit (see TestQMicroKernelAsmMatchesGo).
//
//go:noescape
func qMicroKernel4x4SSE(dst *float32, ldc int, ap, bp *int16, kp int, scale float32)

func qMicroKernel4x4(dst []float32, ldc int, ap, bp []int16, kp int, scale float32) {
	qMicroKernel4x4SSE(&dst[0], ldc, &ap[0], &bp[0], kp, scale)
}

package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// refQMatMul is the exact-integer oracle for the packed int8 GEMM: a
// naive triple loop with an int32 accumulator and the same single
// float32(acc)*scale rounding on output. Integer sums are exact, so the
// packed kernel must match it bit for bit.
func refQMatMul(a, b *QTensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := MustNew(m, n)
	scale := a.Scale * b.Scale
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for p := 0; p < k; p++ {
				acc += int32(a.Data[i*k+p]) * int32(b.Data[p*n+j])
			}
			c.Data[i*n+j] = float32(acc) * scale
		}
	}
	return c
}

func randQ(rng *rand.Rand, dims ...int) *QTensor {
	q := NewQ(dims...)
	for i := range q.Data {
		q.Data[i] = int8(rng.Intn(255) - 127)
	}
	q.Scale = float32(rng.Float64()) + 0.001
	return q
}

func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := MustNew(37, 19)
	for i := range src.Data {
		src.Data[i] = float32(rng.NormFloat64()) * 3
	}
	q := NewQ(37, 19)
	if err := QuantizeInto(q, src); err != nil {
		t.Fatal(err)
	}
	back := MustNew(37, 19)
	if err := DequantizeInto(back, q); err != nil {
		t.Fatal(err)
	}
	// Symmetric round-to-nearest: per-element error is at most scale/2.
	tol := q.Scale/2 + 1e-7
	for i := range src.Data {
		if diff := float64(src.Data[i] - back.Data[i]); math.Abs(diff) > float64(tol) {
			t.Fatalf("element %d: %g -> %g, err %g > %g", i, src.Data[i], back.Data[i], diff, tol)
		}
	}
}

func TestQuantizeExactValues(t *testing.T) {
	src := &Tensor{Shape: []int{5}, Data: []float32{0, 127, -127, 63.5, -63.4}}
	q := &QTensor{Data: make([]int8, 5)}
	if err := QuantizeInto(q, src); err != nil {
		t.Fatal(err)
	}
	if q.Scale != 1 {
		t.Fatalf("scale = %g, want 1 (maxAbs=127)", q.Scale)
	}
	// Round half away from zero: 63.5 -> 64; -63.4 -> -63.
	want := []int8{0, 127, -127, 64, -63}
	for i, w := range want {
		if q.Data[i] != w {
			t.Fatalf("q[%d] = %d, want %d", i, q.Data[i], w)
		}
	}

	// All-zero input: scale defaults to 1, everything quantizes to 0.
	zero := MustNew(3)
	qz := NewQ(3)
	if err := QuantizeInto(qz, zero); err != nil {
		t.Fatal(err)
	}
	if qz.Scale != 1 || qz.Data[0] != 0 {
		t.Fatalf("zero tensor: scale %g data %v", qz.Scale, qz.Data)
	}

	// Values beyond maxAbs can't arise from ScaleFor, but the clamp must
	// hold for any externally supplied scale.
	var clamped [2]int8
	quantizeSlice(clamped[:], []float32{1e6, -1e6}, 1)
	if clamped[0] != QMax || clamped[1] != -QMax {
		t.Fatalf("clamp = %v, want [%d %d]", clamped, QMax, -QMax)
	}
}

func TestQMatMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	shapes := [][3]int{
		{1, 1, 1}, {1, 5, 3}, {5, 1, 3}, {3, 3, 1},
		{4, 4, 4}, {7, 9, 5}, {16, 16, 16}, {13, 31, 17},
		{33, 65, 7}, {64, 48, 72}, {5, 129, 2}, {129, 3, 129},
	}
	for _, s := range shapes {
		m, n, k := s[0], s[1], s[2]
		a := randQ(rng, m, k)
		b := randQ(rng, k, n)
		want := refQMatMul(a, b)
		got := MustNew(m, n)
		got.Fill(99)
		if err := QMatMulInto(got, a, b); err != nil {
			t.Fatalf("QMatMulInto %dx%dx%d: %v", m, n, k, err)
		}
		assertBitIdentical(t, fmt.Sprintf("qmatmul %dx%dx%d", m, n, k), got, want)
	}
}

func TestQMatMulShapeErrors(t *testing.T) {
	a := NewQ(2, 3)
	b := NewQ(4, 2) // inner mismatch
	dst := MustNew(2, 2)
	if err := QMatMulInto(dst, a, b); err == nil {
		t.Fatal("inner-dim mismatch not rejected")
	}
	b = NewQ(3, 5)
	if err := QMatMulInto(dst, a, b); err == nil {
		t.Fatal("dst shape mismatch not rejected")
	}
}

// TestQMicroKernelAsmMatchesGo pins the PMADDWD assembly kernel to the
// portable one on identical packed panels: exact integer sums plus the
// same convert-and-scale, so outputs must be bit-equal.
func TestQMicroKernelAsmMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, kp := range []int{1, 2, 3, 7, 64, 200} {
		ap := make([]int16, gemmMR*2*kp)
		bp := make([]int16, gemmNR*2*kp)
		for i := range ap {
			ap[i] = int16(rng.Intn(255) - 127)
		}
		for i := range bp {
			bp[i] = int16(rng.Intn(255) - 127)
		}
		const ldc = 7
		cGo := MustNew(gemmMR, ldc)
		cAsm := MustNew(gemmMR, ldc)
		scale := float32(0.0123)
		qMicroKernel4x4Go(cGo.Data, ldc, ap, bp, kp, scale)
		qMicroKernel4x4(cAsm.Data, ldc, ap, bp, kp, scale)
		for r := 0; r < gemmMR; r++ {
			for j := 0; j < gemmNR; j++ {
				if cGo.Data[r*ldc+j] != cAsm.Data[r*ldc+j] {
					t.Fatalf("kp=%d [%d][%d]: asm %x, go %x", kp, r, j, cAsm.Data[r*ldc+j], cGo.Data[r*ldc+j])
				}
			}
		}
	}
}

// TestSlicePoolConcurrentUse mirrors TestPoolConcurrentUse for the typed
// int8/int32 scratch pools: concurrent workers must never observe each
// other's writes in a buffer they own.
func TestSlicePoolConcurrentUse(t *testing.T) {
	var p8 SlicePool[int8]
	var p32 SlicePool[int32]
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := p8.Get(64)
				b := p32.Get(64)
				for j := range a {
					a[j] = int8(w)
					b[j] = int32(w) << 8
				}
				for j := range a {
					if a[j] != int8(w) || b[j] != int32(w)<<8 {
						t.Errorf("worker %d saw foreign write", w)
						return
					}
				}
				p8.Put(a)
				p32.Put(b)
			}
		}(w)
	}
	wg.Wait()
}

func TestSlicePoolReuseAndSizing(t *testing.T) {
	var p SlicePool[int32]
	a := p.Get(10)
	if len(a) != 10 || cap(a) != 1024 {
		t.Fatalf("Get(10): len %d cap %d, want 10/1024", len(a), cap(a))
	}
	a[0] = 7
	p.Put(a)
	b := p.Get(1000) // same bucket: must reuse
	if cap(b) != 1024 {
		t.Fatalf("Get(1000): cap %d, want 1024", cap(b))
	}
	p.Put(b)
	p.Put(nil) // no-op
	if got := p.Get(0); len(got) != 0 {
		t.Fatalf("Get(0): len %d", len(got))
	}
}

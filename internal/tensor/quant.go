package tensor

import "fmt"

// Symmetric int8 quantization for the inference path. Values are mapped
// by a single positive scale per tensor: q = clamp(round(x/scale)) with
// scale = maxAbs/127, so zero is exactly representable and no zero-point
// arithmetic is needed in the GEMM. The int8 GEMM accumulates in int32 —
// exact integer math, so unlike the f32 kernels it has no accumulation-
// order contract — and applies scaleA*scaleB once per output element on
// the way back to float32.

// QMax is the symmetric quantization range bound: values quantize into
// [-QMax, QMax] so that +maxAbs and -maxAbs are both representable.
const QMax = 127

// QTensor is an int8-quantized tensor: Data holds q values, Scale the
// dequantization factor (x ≈ Scale * q).
type QTensor struct {
	Shape []int
	Data  []int8
	Scale float32
}

// NewQ allocates a zero QTensor with the given shape and scale 1.
func NewQ(dims ...int) *QTensor {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic("tensor: NewQ needs positive dims")
		}
		n *= d
	}
	return &QTensor{Shape: append([]int(nil), dims...), Data: make([]int8, n), Scale: 1}
}

// ScaleFor returns the symmetric quantization scale for xs: maxAbs/QMax,
// or 1 when every element is zero (any scale represents all-zeros
// exactly; 1 keeps dequantization well-defined).
func ScaleFor(xs []float32) float32 {
	var maxAbs float32
	for _, x := range xs {
		a := x
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / QMax
}

// QuantizeInto quantizes src into dst (which must have the same element
// count), computing dst.Scale from src: round-to-nearest (half away from
// zero), clamped to [-QMax, QMax]. Shape is copied from src.
func QuantizeInto(dst *QTensor, src *Tensor) error {
	if len(dst.Data) != len(src.Data) {
		return fmt.Errorf("tensor: QuantizeInto size %d, want %d", len(dst.Data), len(src.Data))
	}
	dst.Shape = append(dst.Shape[:0], src.Shape...)
	dst.Scale = ScaleFor(src.Data)
	quantizeSlice(dst.Data, src.Data, dst.Scale)
	return nil
}

// QuantizeSlice quantizes src into dst with a caller-chosen scale —
// the dynamic-activation path, where the caller computes ScaleFor once
// per batch and quantizes into pooled int8 scratch.
func QuantizeSlice(dst []int8, src []float32, scale float32) error {
	if len(dst) != len(src) {
		return fmt.Errorf("tensor: QuantizeSlice size %d, want %d", len(dst), len(src))
	}
	quantizeSlice(dst, src, scale)
	return nil
}

// quantizeSlice writes round(x/scale) clamped to the int8 range.
func quantizeSlice(dst []int8, src []float32, scale float32) {
	inv := 1 / scale
	// Round half away from zero without the float64 math.Round round
	// trip: adding ±0.5 before the truncating conversion is the same
	// rounding for every representable quotient (|x*inv| ≤ QMax + ε by
	// construction of the scale, so the addition cannot overflow int32).
	for i, x := range src {
		r := x * inv
		var q int32
		if r >= 0 {
			q = int32(r + 0.5)
		} else {
			q = int32(r - 0.5)
		}
		if q > QMax {
			q = QMax
		} else if q < -QMax {
			q = -QMax
		}
		dst[i] = int8(q)
	}
}

// DequantizeInto expands src back to float32: dst[i] = Scale * q[i].
func DequantizeInto(dst *Tensor, src *QTensor) error {
	if len(dst.Data) != len(src.Data) {
		return fmt.Errorf("tensor: DequantizeInto size %d, want %d", len(dst.Data), len(src.Data))
	}
	for i, q := range src.Data {
		dst.Data[i] = src.Scale * float32(q)
	}
	return nil
}

// QMatMulInto computes dst = (a.Scale*b.Scale) * (qa · qb) for int8
// operands a (m×k) and b (k×n) with exact int32 accumulation, writing
// float32 into dst (m×n). Both operands are repacked into int16
// pair-interleaved panels (pooled; zero-alloc in steady state) so the
// microkernel — PMADDWD on amd64, a portable mirror elsewhere — streams
// contiguous data. |acc| ≤ QMax²·k, so k must stay below ~1.3e5 to avoid
// int32 overflow; every model in this repo is orders of magnitude under.
func QMatMulInto(dst *Tensor, a, b *QTensor) error {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return fmt.Errorf("tensor: QMatMul needs 2-D operands, got %v × %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: QMatMul inner dims differ: %v × %v", a.Shape, b.Shape)
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		return fmt.Errorf("tensor: QMatMul dst shape %v, want [%d %d]", dst.Shape, m, n)
	}
	statQGEMMCalls.Add(1)
	if k == 0 {
		dst.Zero()
		return nil
	}
	scale := a.Scale * b.Scale
	kp := (k + 1) / 2 // pair count; odd k zero-pads the final pair

	// Pack all of B once (strips of gemmNR columns, pair-interleaved);
	// workers share it read-only and pack only their own A rows.
	bpBuf := GetScratchI16(roundUp(n, gemmNR) * kp * 2)
	packQB(bpBuf, b.Data, k, n)
	parallelRowsAligned(m, m*n*k, gemmMR, func(r0, r1 int) {
		apBuf := GetScratchI16(roundUp(r1-r0, gemmMR) * kp * 2)
		packQA(apBuf, a.Data, r0, r1-r0, k)
		for jr := 0; jr < n; jr += gemmNR {
			cols := min(gemmNR, n-jr)
			bstrip := bpBuf[(jr/gemmNR)*2*gemmNR*kp:]
			for ir := r0; ir < r1; ir += gemmMR {
				rows := min(gemmMR, r1-ir)
				astrip := apBuf[((ir-r0)/gemmMR)*2*gemmMR*kp:]
				dbase := ir*n + jr
				if rows == gemmMR && cols == gemmNR {
					qMicroKernel4x4(dst.Data[dbase:], n, astrip, bstrip, kp, scale)
				} else {
					qMicroKernelEdge(dst.Data[dbase:], n, astrip, bstrip, kp, scale, rows, cols)
				}
			}
		}
		PutScratchI16(apBuf)
	})
	PutScratchI16(bpBuf)
	return nil
}

// packQA packs rows [i0,i0+mc) of row-major int8 A (width k) into
// gemmMR-row strips of int16 pairs: strip-local index p2*(MR*2) + r*2 + t
// holds a[i0+strip*MR+r][2*p2+t]. Ragged rows and the odd-k tail pad
// with zeros (exact: 0 contributes nothing to an integer sum).
func packQA(dst []int16, a []int8, i0, mc, k int) {
	kp := (k + 1) / 2
	di := 0
	for ir := 0; ir < mc; ir += gemmMR {
		rows := min(gemmMR, mc-ir)
		for r := 0; r < gemmMR; r++ {
			if r >= rows {
				for p2 := 0; p2 < kp; p2++ {
					dst[di+p2*gemmMR*2+r*2] = 0
					dst[di+p2*gemmMR*2+r*2+1] = 0
				}
				continue
			}
			row := a[(i0+ir+r)*k : (i0+ir+r)*k+k]
			for p2 := 0; p2 < kp; p2++ {
				d := di + p2*gemmMR*2 + r*2
				dst[d] = int16(row[2*p2])
				if 2*p2+1 < k {
					dst[d+1] = int16(row[2*p2+1])
				} else {
					dst[d+1] = 0
				}
			}
		}
		di += gemmMR * 2 * kp
	}
}

// packQB packs row-major int8 B (k×n) into gemmNR-column strips of int16
// pairs: strip-local index p2*(NR*2) + j*2 + t holds b[2*p2+t][j0+j].
// Row pairs are the outer loop so both source rows stream sequentially —
// with column strips outside, every strip re-walks B column-major and
// for im2col-sized matrices (n in the tens of thousands) the reads
// thrash; this ordering cut packQB's profile share roughly in half.
func packQB(dst []int16, b []int8, k, n int) {
	kp := (k + 1) / 2
	nFull := n - n%gemmNR
	stripLen := gemmNR * 2 * kp
	for p2 := 0; p2 < kp; p2++ {
		r0 := b[2*p2*n : 2*p2*n+n]
		hasR1 := 2*p2+1 < k
		var r1 []int8
		if hasR1 {
			r1 = b[(2*p2+1)*n : (2*p2+1)*n+n]
		}
		d := p2 * gemmNR * 2
		if hasR1 {
			for jr := 0; jr < nFull; jr += gemmNR {
				s0 := r0[jr : jr+4 : jr+4]
				s1 := r1[jr : jr+4 : jr+4]
				o := dst[d : d+8 : d+8]
				o[0], o[1] = int16(s0[0]), int16(s1[0])
				o[2], o[3] = int16(s0[1]), int16(s1[1])
				o[4], o[5] = int16(s0[2]), int16(s1[2])
				o[6], o[7] = int16(s0[3]), int16(s1[3])
				d += stripLen
			}
		} else {
			for jr := 0; jr < nFull; jr += gemmNR {
				s0 := r0[jr : jr+4 : jr+4]
				o := dst[d : d+8 : d+8]
				o[0], o[1] = int16(s0[0]), 0
				o[2], o[3] = int16(s0[1]), 0
				o[4], o[5] = int16(s0[2]), 0
				o[6], o[7] = int16(s0[3]), 0
				d += stripLen
			}
		}
		if nFull < n {
			o := dst[d : d+8 : d+8]
			for j := 0; j < gemmNR; j++ {
				col := nFull + j
				if col >= n {
					o[j*2], o[j*2+1] = 0, 0
					continue
				}
				o[j*2] = int16(r0[col])
				if hasR1 {
					o[j*2+1] = int16(r1[col])
				} else {
					o[j*2+1] = 0
				}
			}
		}
	}
}

// qMicroKernel4x4Go is the portable int8 microkernel: 16 int32
// accumulators over pair-interleaved int16 panels, scaled to float32 on
// store. The amd64 version (PMADDWD) computes the identical integer
// sums; integer math is exact, so they agree bit-for-bit, including the
// final float32(acc)*scale rounding.
func qMicroKernel4x4Go(dst []float32, ldc int, ap, bp []int16, kp int, scale float32) {
	var acc [gemmMR][gemmNR]int32
	qAccumulate(&acc, ap, bp, kp)
	for r := 0; r < gemmMR; r++ {
		for j := 0; j < gemmNR; j++ {
			dst[r*ldc+j] = float32(acc[r][j]) * scale
		}
	}
}

// qMicroKernelEdge handles ragged tiles: full-width integer accumulation
// over the zero-padded panels, storing only the valid lanes.
func qMicroKernelEdge(dst []float32, ldc int, ap, bp []int16, kp int, scale float32, rows, cols int) {
	var acc [gemmMR][gemmNR]int32
	qAccumulate(&acc, ap, bp, kp)
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			dst[r*ldc+j] = float32(acc[r][j]) * scale
		}
	}
}

func qAccumulate(acc *[gemmMR][gemmNR]int32, ap, bp []int16, kp int) {
	ap = ap[: kp*8 : kp*8]
	bp = bp[: kp*8 : kp*8]
	for p := 0; p < kp; p++ {
		a := ap[p*8 : p*8+8 : p*8+8]
		b := bp[p*8 : p*8+8 : p*8+8]
		for r := 0; r < gemmMR; r++ {
			ar0, ar1 := int32(a[r*2]), int32(a[r*2+1])
			acc[r][0] += ar0*int32(b[0]) + ar1*int32(b[1])
			acc[r][1] += ar0*int32(b[2]) + ar1*int32(b[3])
			acc[r][2] += ar0*int32(b[4]) + ar1*int32(b[5])
			acc[r][3] += ar0*int32(b[6]) + ar1*int32(b[7])
		}
	}
}

// Package tensor provides the dense float32 n-d array underpinning the
// pure-Go detector: shape bookkeeping, elementwise kernels, and a blocked
// parallel matrix multiply. It is deliberately small — just what a
// single-stage convolutional detector needs — but each operation is
// bounds-checked and tested in isolation.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape. All dimensions must
// be positive.
func New(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("tensor: dimension %d must be positive in shape %v", d, shape)
		}
		n *= d
	}
	if len(shape) == 0 {
		return nil, fmt.Errorf("tensor: shape must have at least one dimension")
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}, nil
}

// MustNew is New for statically known-valid shapes; panics on error.
func MustNew(shape ...int) *Tensor {
	t, err := New(shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape, copying the slice.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	t, err := New(shape...)
	if err != nil {
		return nil, err
	}
	if len(data) != len(t.Data) {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (%d elems)", len(data), shape, len(t.Data))
	}
	copy(t.Data, data)
	return t, nil
}

// NumElems returns the total element count.
func (t *Tensor) NumElems() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int {
	if i < 0 || i >= len(t.Shape) {
		return 0
	}
	return t.Shape[i]
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// offset computes the flat index for multi-indices; panics on rank or
// range errors (programming bugs, not runtime conditions). The panic
// messages format only scalars — never the idx slice — so escape
// analysis keeps At/Set variadic arguments on the caller's stack, which
// is what makes index-heavy hot loops (target encoding, loss
// gather/scatter, grid decode) allocation-free.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dimension %d", v, t.Shape[i], i))
		}
		off = off*t.Shape[i] + v
	}
	return off
}

// At reads the element at the multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set writes the element at the multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Reshape returns a view-copy with a new shape of equal element count.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	out, err := New(shape...)
	if err != nil {
		return nil, err
	}
	if len(out.Data) != len(t.Data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.Shape, len(t.Data), shape, len(out.Data))
	}
	copy(out.Data, t.Data)
	return out, nil
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddScaled adds alpha*o elementwise into t. Shapes must match.
func (t *Tensor) AddScaled(o *Tensor, alpha float32) error {
	if !t.SameShape(o) {
		return fmt.Errorf("tensor: AddScaled shape mismatch %v vs %v", t.Shape, o.Shape)
	}
	for i := range t.Data {
		t.Data[i] += alpha * o.Data[i]
	}
	return nil
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Dot returns the flat inner product of two same-shaped tensors.
func (t *Tensor) Dot(o *Tensor) (float64, error) {
	if !t.SameShape(o) {
		return 0, fmt.Errorf("tensor: Dot shape mismatch %v vs %v", t.Shape, o.Shape)
	}
	var sum float64
	for i := range t.Data {
		sum += float64(t.Data[i]) * float64(o.Data[i])
	}
	return sum, nil
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var sum float64
	for _, v := range t.Data {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum)
}

// HeInit fills the tensor with Kaiming-He normal values for a layer with
// the given fan-in, the standard initialization for ReLU-family networks.
func (t *Tensor) HeInit(fanIn int, rng *rand.Rand) error {
	if fanIn <= 0 {
		return fmt.Errorf("tensor: HeInit fan-in must be positive, got %d", fanIn)
	}
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	return nil
}

// UniformInit fills with values in [-bound, bound].
func (t *Tensor) UniformInit(bound float64, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = float32((rng.Float64()*2 - 1) * bound)
	}
}

package tensor

import (
	"math/rand"
	"testing"
)

// Reference kernels: the seed repo's serial triple loops, preserved here
// verbatim (including the zero-skip branch the optimized kernels dropped)
// as the bit-identity oracle for the blocked parallel kernels.

func refMatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := MustNew(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b.Data[p*n : (p+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
	return c
}

func refMatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := MustNew(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.Data[i*n : (i+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
	return c
}

func refMatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	c := MustNew(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		ci := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var sum float32
			for p := range ai {
				sum += ai[p] * bj[p]
			}
			ci[j] = sum
		}
	}
	return c
}

// refMatMulTransBFold is the per-sample backward reference: compute A·Bᵀ
// over each segment separately and accumulate the partial products in
// segment order — the float ordering of the seed conv backward's
// per-sample GEMM + AddScaled loop.
func refMatMulTransBFold(a, b *Tensor, segLen int) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	c := MustNew(m, n)
	for off := 0; off < k; off += segLen {
		for i := 0; i < m; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var sum float32
				for p := off; p < off+segLen; p++ {
					sum += ai[p] * bj[p]
				}
				ci[j] += sum
			}
		}
	}
	return c
}

// fillMixed fills a tensor with a mix of random values and exact zeros so
// the bit-identity tests also cover the removed zero-skip branch.
func fillMixed(t *Tensor, rng *rand.Rand) {
	for i := range t.Data {
		switch rng.Intn(5) {
		case 0:
			t.Data[i] = 0
		default:
			t.Data[i] = float32(rng.NormFloat64())
		}
	}
}

func assertBitIdentical(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %x, want %x (values %g vs %g)",
				name, i, got.Data[i], want.Data[i], got.Data[i], want.Data[i])
		}
	}
}

// kernelShapes covers odd shapes including every dimension collapsed to
// one, non-multiples of the register block width, and a size big enough
// to cross the parallel threshold.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 5},
	{5, 1, 7},
	{7, 5, 1},
	{2, 3, 2},
	{3, 3, 3},
	{4, 4, 4},
	{5, 9, 6},
	{13, 17, 11},
	{16, 27, 64},
	{33, 31, 29},
	{64, 48, 40},
	{128, 128, 128}, // crosses parallelThreshold
}

func TestMatMulBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range kernelShapes {
		a := MustNew(s.m, s.k)
		b := MustNew(s.k, s.n)
		fillMixed(a, rng)
		fillMixed(b, rng)
		got, err := MatMul(a, b)
		if err != nil {
			t.Fatalf("MatMul %v: %v", s, err)
		}
		assertBitIdentical(t, "MatMul", got, refMatMul(a, b))
		// The Into form on a dirty destination must agree too.
		dst := MustNew(s.m, s.n)
		dst.Fill(42)
		if err := MatMulInto(dst, a, b); err != nil {
			t.Fatalf("MatMulInto %v: %v", s, err)
		}
		assertBitIdentical(t, "MatMulInto", dst, got)
	}
}

func TestMatMulTransABitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range kernelShapes {
		a := MustNew(s.k, s.m)
		b := MustNew(s.k, s.n)
		fillMixed(a, rng)
		fillMixed(b, rng)
		got, err := MatMulTransA(a, b)
		if err != nil {
			t.Fatalf("MatMulTransA %v: %v", s, err)
		}
		assertBitIdentical(t, "MatMulTransA", got, refMatMulTransA(a, b))
		dst := MustNew(s.m, s.n)
		dst.Fill(-7)
		if err := MatMulTransAInto(dst, a, b); err != nil {
			t.Fatalf("MatMulTransAInto %v: %v", s, err)
		}
		assertBitIdentical(t, "MatMulTransAInto", dst, got)
	}
}

func TestMatMulTransBBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range kernelShapes {
		a := MustNew(s.m, s.k)
		b := MustNew(s.n, s.k)
		fillMixed(a, rng)
		fillMixed(b, rng)
		got, err := MatMulTransB(a, b)
		if err != nil {
			t.Fatalf("MatMulTransB %v: %v", s, err)
		}
		assertBitIdentical(t, "MatMulTransB", got, refMatMulTransB(a, b))
		dst := MustNew(s.m, s.n)
		dst.Fill(3)
		if err := MatMulTransBInto(dst, a, b); err != nil {
			t.Fatalf("MatMulTransBInto %v: %v", s, err)
		}
		assertBitIdentical(t, "MatMulTransBInto", dst, got)
	}
}

func TestMatMulTransBFoldBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := []struct{ m, n, segLen, segs int }{
		{1, 1, 1, 1},
		{1, 3, 4, 5},
		{3, 1, 5, 4},
		{4, 6, 9, 3},
		{8, 27, 16, 16}, // conv dW shape: (outC, Cin*K*K) over N samples
		{16, 72, 64, 16},
		{5, 7, 1, 13},
	}
	for _, s := range cases {
		k := s.segLen * s.segs
		a := MustNew(s.m, k)
		b := MustNew(s.n, k)
		fillMixed(a, rng)
		fillMixed(b, rng)
		dst := MustNew(s.m, s.n)
		dst.Fill(9)
		if err := MatMulTransBFoldInto(dst, a, b, s.segLen); err != nil {
			t.Fatalf("MatMulTransBFoldInto %v: %v", s, err)
		}
		assertBitIdentical(t, "MatMulTransBFoldInto", dst, refMatMulTransBFold(a, b, s.segLen))
	}
}

func TestMatMulTransBFoldValidation(t *testing.T) {
	a := MustNew(2, 6)
	b := MustNew(3, 6)
	dst := MustNew(2, 3)
	if err := MatMulTransBFoldInto(dst, a, b, 4); err == nil {
		t.Error("segment length not dividing inner dim accepted")
	}
	if err := MatMulTransBFoldInto(dst, a, b, 0); err == nil {
		t.Error("zero segment length accepted")
	}
	if err := MatMulTransBFoldInto(MustNew(3, 3), a, b, 3); err == nil {
		t.Error("wrong dst shape accepted")
	}
}

// TestZeroSkipRemovalBitIdentical pins down the claim that dropping the
// historical `if av == 0 { continue }` branch cannot change results on
// finite data: accumulators start at +0, partial sums are never -0 (a
// negative-total sum is nonzero; exact cancellation yields +0 in
// round-to-nearest), and x + (±0·b) == x for every such x.
func TestZeroSkipRemovalBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := MustNew(16, 33)
	b := MustNew(33, 21)
	// Dense zeros on both sides, including whole zero rows/columns, and
	// negative values so ±0 products occur.
	fillMixed(a, rng)
	fillMixed(b, rng)
	for j := 0; j < 33; j++ {
		a.Data[5*33+j] = 0 // zero row of A
	}
	for j := 0; j < 21; j++ {
		b.Data[7*21+j] = 0 // zero row of B
	}
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "MatMul with zeros", got, refMatMul(a, b))
}

func TestIntoValidation(t *testing.T) {
	a := MustNew(2, 3)
	b := MustNew(3, 4)
	if err := MatMulInto(MustNew(2, 5), a, b); err == nil {
		t.Error("wrong dst shape accepted")
	}
	if err := MatMulInto(MustNew(8), a, b); err == nil {
		t.Error("1-D dst accepted")
	}
	if err := MatMulTransAInto(MustNew(2, 2), a, b); err == nil {
		t.Error("TransA wrong dst shape accepted")
	}
	if err := MatMulTransBInto(MustNew(2, 2), a, MustNew(4, 3)); err == nil {
		t.Error("TransB wrong dst shape accepted")
	}
}

package tensor

import "sync"

// Pool recycles tensors by element count so hot loops (training steps,
// concurrent inference) reuse buffers instead of churning the garbage
// collector. Buckets are backed by sync.Pool, so the pool is safe for
// concurrent use and its contents are reclaimable under memory pressure —
// holding a buffer in the pool never pins peak memory the way a
// long-lived per-layer cache would.
//
// Get returns a tensor with UNDEFINED contents: callers must fully write
// it (or call Zero) before reading. Put hands the tensor back; it must
// not be used — or Put again — afterward.
type Pool struct {
	buckets sync.Map // element count -> *sync.Pool of *Tensor
}

// NewPool constructs an empty pool.
func NewPool() *Pool { return &Pool{} }

func (p *Pool) bucket(n int) *sync.Pool {
	if v, ok := p.buckets.Load(n); ok {
		return v.(*sync.Pool)
	}
	v, _ := p.buckets.LoadOrStore(n, &sync.Pool{})
	return v.(*sync.Pool)
}

// Get returns a tensor of the given shape with undefined contents,
// reusing a pooled buffer of the same element count when one is
// available. Invalid shapes panic (a programming bug, as in MustNew).
func (p *Pool) Get(shape ...int) *Tensor {
	if len(shape) == 0 {
		panic("tensor: pool Get with empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			// A constant panic message keeps the shape argument from
			// escaping, so hot-loop Gets stay allocation-free.
			panic("tensor: pool Get with non-positive dimension")
		}
		n *= d
	}
	if v := p.bucket(n).Get(); v != nil {
		t := v.(*Tensor)
		t.Shape = append(t.Shape[:0], shape...)
		return t
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Put returns a tensor to the pool for reuse. Put(nil) is a no-op.
func (p *Pool) Put(t *Tensor) {
	if t == nil || len(t.Data) == 0 {
		return
	}
	p.bucket(len(t.Data)).Put(t)
}

// scratch is the package-level pool shared by the whole compute layer:
// nn layer activations and gradients, im2col matrices, and the
// yolo/classify batch tensors all cycle through it, so a buffer freed by
// one stage is immediately reusable by the next.
var scratch = NewPool()

// GetScratch returns a tensor from the shared scratch pool. Contents are
// undefined; see Pool.Get.
func GetScratch(shape ...int) *Tensor { return scratch.Get(shape...) }

// PutScratch returns a tensor to the shared scratch pool. The tensor
// must not be used afterward.
func PutScratch(t *Tensor) { scratch.Put(t) }

package tensor

import "sync"

// Pool recycles tensors by element count so hot loops (training steps,
// concurrent inference) reuse buffers instead of churning the garbage
// collector. Buckets are backed by sync.Pool, so the pool is safe for
// concurrent use and its contents are reclaimable under memory pressure —
// holding a buffer in the pool never pins peak memory the way a
// long-lived per-layer cache would.
//
// Get returns a tensor with UNDEFINED contents: callers must fully write
// it (or call Zero) before reading. Put hands the tensor back; it must
// not be used — or Put again — afterward.
type Pool struct {
	buckets sync.Map // element count -> *sync.Pool of *Tensor
}

// NewPool constructs an empty pool.
func NewPool() *Pool { return &Pool{} }

func (p *Pool) bucket(n int) *sync.Pool {
	if v, ok := p.buckets.Load(n); ok {
		return v.(*sync.Pool)
	}
	v, _ := p.buckets.LoadOrStore(n, &sync.Pool{})
	return v.(*sync.Pool)
}

// Get returns a tensor of the given shape with undefined contents,
// reusing a pooled buffer of the same element count when one is
// available. Invalid shapes panic (a programming bug, as in MustNew).
func (p *Pool) Get(shape ...int) *Tensor {
	if len(shape) == 0 {
		panic("tensor: pool Get with empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			// A constant panic message keeps the shape argument from
			// escaping, so hot-loop Gets stay allocation-free.
			panic("tensor: pool Get with non-positive dimension")
		}
		n *= d
	}
	if v := p.bucket(n).Get(); v != nil {
		t := v.(*Tensor)
		t.Shape = append(t.Shape[:0], shape...)
		return t
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Put returns a tensor to the pool for reuse. Put(nil) is a no-op.
func (p *Pool) Put(t *Tensor) {
	if t == nil || len(t.Data) == 0 {
		return
	}
	p.bucket(len(t.Data)).Put(t)
}

// scratch is the package-level pool shared by the whole compute layer:
// nn layer activations and gradients, im2col matrices, and the
// yolo/classify batch tensors all cycle through it, so a buffer freed by
// one stage is immediately reusable by the next.
var scratch = NewPool()

// GetScratch returns a tensor from the shared scratch pool. Contents are
// undefined; see Pool.Get.
func GetScratch(shape ...int) *Tensor { return scratch.Get(shape...) }

// PutScratch returns a tensor to the shared scratch pool. The tensor
// must not be used afterward.
func PutScratch(t *Tensor) { scratch.Put(t) }

// SlicePool is the typed-slice sibling of Pool for the quantized path:
// int8 activations, int16 packed panels, and int32 accumulators each get
// their own bucket space, so quantized scratch never aliases (or evicts)
// the float32 tensor buckets. Same contract as Pool: Get returns
// UNDEFINED contents sized at least n (sliced to exactly n), Put recycles.
type SlicePool[T int8 | int16 | int32] struct {
	buckets sync.Map // rounded capacity -> *sync.Pool of *sliceBox[T]
}

type sliceBox[T int8 | int16 | int32] struct{ buf []T }

func (p *SlicePool[T]) bucket(n int) *sync.Pool {
	if v, ok := p.buckets.Load(n); ok {
		return v.(*sync.Pool)
	}
	v, _ := p.buckets.LoadOrStore(n, &sync.Pool{})
	return v.(*sync.Pool)
}

// Get returns a slice of length n with undefined contents. Capacities
// round up to 1K-element buckets so close sizes share buffers.
func (p *SlicePool[T]) Get(n int) []T {
	if n < 0 {
		panic("tensor: slice pool Get with negative size")
	}
	bcap := roundUp(n, 1024)
	if v := p.bucket(bcap).Get(); v != nil {
		return v.(*sliceBox[T]).buf[:n]
	}
	return make([]T, bcap)[:n]
}

// Put returns a slice obtained from Get to the pool. The slice must not
// be used afterward. Put(nil) is a no-op.
func (p *SlicePool[T]) Put(s []T) {
	if cap(s) == 0 {
		return
	}
	p.bucket(cap(s)).Put(&sliceBox[T]{buf: s[:cap(s)]})
}

// Package-level typed scratch pools for the quantized inference path.
var (
	scratchI8  SlicePool[int8]
	scratchI16 SlicePool[int16]
	scratchI32 SlicePool[int32]
)

// GetScratchI8 returns pooled int8 scratch of length n (undefined contents).
func GetScratchI8(n int) []int8 { return scratchI8.Get(n) }

// PutScratchI8 recycles int8 scratch obtained from GetScratchI8.
func PutScratchI8(s []int8) { scratchI8.Put(s) }

// GetScratchI16 returns pooled int16 scratch of length n (undefined contents).
func GetScratchI16(n int) []int16 { return scratchI16.Get(n) }

// PutScratchI16 recycles int16 scratch obtained from GetScratchI16.
func PutScratchI16(s []int16) { scratchI16.Put(s) }

// GetScratchI32 returns pooled int32 scratch of length n (undefined contents).
func GetScratchI32(n int) []int32 { return scratchI32.Get(n) }

// PutScratchI32 recycles int32 scratch obtained from GetScratchI32.
func PutScratchI32(s []int32) { scratchI32.Put(s) }

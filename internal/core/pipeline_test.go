package core

import (
	"testing"

	"nbhd/internal/dataset"
	"nbhd/internal/ensemble"
	"nbhd/internal/prompt"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

func smallPipeline(t *testing.T, coords int) *Pipeline {
	t.Helper()
	p, err := NewPipeline(Config{Coordinates: coords, Seed: 5, DetectorInputSize: 32, LLMRenderSize: 96})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	return p
}

func TestNewPipelineBuildsAnnotations(t *testing.T) {
	p := smallPipeline(t, 6)
	if p.Study.Len() != 24 {
		t.Fatalf("frames = %d", p.Study.Len())
	}
	if p.Annotations.Len() != 24 {
		t.Fatalf("annotations = %d", p.Annotations.Len())
	}
	// Annotation object counts match scene ground truth.
	if got, want := p.Annotations.TotalObjects(), totalObjects(p.Study); got != want {
		t.Errorf("annotation objects = %d, scene objects = %d", got, want)
	}
}

func totalObjects(st *dataset.Study) int {
	n := 0
	for _, fr := range st.Frames {
		n += len(fr.Scene.Objects)
	}
	return n
}

func TestTrainBaselineSmoke(t *testing.T) {
	p := smallPipeline(t, 20)
	var epochs int
	res, err := p.TrainBaseline(BaselineOptions{
		Epochs:    4,
		BatchSize: 16,
		Progress:  func(int, float64) { epochs++ },
	})
	if err != nil {
		t.Fatalf("TrainBaseline: %v", err)
	}
	if epochs != 4 {
		t.Errorf("progress calls = %d", epochs)
	}
	if res.Model == nil || res.Report == nil {
		t.Fatal("nil result fields")
	}
	if res.MAP50 < 0 || res.MAP50 > 1 {
		t.Errorf("mAP50 = %f", res.MAP50)
	}
}

func TestTrainBaselineWithAugmentAndNoise(t *testing.T) {
	p := smallPipeline(t, 10)
	res, err := p.TrainBaseline(BaselineOptions{
		Epochs:     2,
		BatchSize:  16,
		Augment:    dataset.FlippingOps(),
		NoiseSNRdB: 20,
	})
	if err != nil {
		t.Fatalf("TrainBaseline: %v", err)
	}
	if res.Report == nil {
		t.Fatal("nil report")
	}
}

func TestEvaluateClassifier(t *testing.T) {
	p := smallPipeline(t, 10)
	profile, err := vlm.ProfileFor(vlm.Gemini15Pro)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vlm.NewModel(profile)
	if err != nil {
		t.Fatal(err)
	}
	report, err := p.EvaluateClassifier(m, LLMOptions{})
	if err != nil {
		t.Fatalf("EvaluateClassifier: %v", err)
	}
	total := 0
	for _, ind := range scene.Indicators() {
		total += report.Of(ind).Total()
	}
	if total != p.Study.Len()*scene.NumIndicators {
		t.Errorf("report covers %d pairs, want %d", total, p.Study.Len()*scene.NumIndicators)
	}
	// FrameLimit caps coverage.
	limited, err := p.EvaluateClassifier(m, LLMOptions{FrameLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := limited.Of(scene.Sidewalk).Total(); got != 8 {
		t.Errorf("limited report = %d pairs/class, want 8", got)
	}
}

func TestEvaluateAllLLMsAndVoting(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-model sweep in -short mode")
	}
	p := smallPipeline(t, 30)
	reports, err := p.EvaluateAllLLMs(LLMOptions{})
	if err != nil {
		t.Fatalf("EvaluateAllLLMs: %v", err)
	}
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	voting, err := p.RunMajorityVoting(reports, LLMOptions{})
	if err != nil {
		t.Fatalf("RunMajorityVoting: %v", err)
	}
	if len(voting.Committee) != 3 {
		t.Fatalf("committee = %v", voting.Committee)
	}
	// Voting accuracy should be at least competitive with the best
	// member (exact dominance is asserted at larger scale in the
	// ensemble package tests).
	_, _, _, votedAcc := voting.Report.Averages()
	if votedAcc < 0.7 {
		t.Errorf("voting accuracy %.3f implausibly low", votedAcc)
	}
}

func TestEvaluateClassifierLanguagesAndModes(t *testing.T) {
	p := smallPipeline(t, 8)
	profile, err := vlm.ProfileFor(vlm.Gemini15Pro)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vlm.NewModel(profile)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []LLMOptions{
		{Language: prompt.Spanish},
		{Mode: prompt.Sequential},
		{Temperature: 1.5},
		{TopP: 0.5},
	} {
		if _, err := p.EvaluateClassifier(m, opts); err != nil {
			t.Errorf("EvaluateClassifier(%+v): %v", opts, err)
		}
	}
}

func TestAnalyzeNeighborhood(t *testing.T) {
	p := smallPipeline(t, 16)
	committee, err := ensemble.PaperCommittee()
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.AnalyzeNeighborhood(committee, 2000)
	if err != nil {
		t.Fatalf("AnalyzeNeighborhood: %v", err)
	}
	if len(res.Locations) != 16 {
		t.Errorf("locations = %d, want 16", len(res.Locations))
	}
	if len(res.Tracts) == 0 || len(res.Scores) != len(res.Tracts) {
		t.Errorf("tracts = %d scores = %d", len(res.Tracts), len(res.Scores))
	}
	if len(res.Associations) != scene.NumIndicators {
		t.Errorf("associations = %d", len(res.Associations))
	}
	// Locations per tract sum to total.
	sum := 0
	for _, tr := range res.Tracts {
		sum += tr.Locations
	}
	if sum != len(res.Locations) {
		t.Errorf("tract locations sum = %d", sum)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Coordinates != dataset.StudyCoordinates {
		t.Errorf("default coordinates = %d", cfg.Coordinates)
	}
	if cfg.DetectorInputSize != 64 || cfg.LLMRenderSize != 96 {
		t.Errorf("default sizes = %d/%d", cfg.DetectorInputSize, cfg.LLMRenderSize)
	}
}

package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"nbhd/internal/backend"
	"nbhd/internal/classify"
	"nbhd/internal/yolo"

	"nbhd/internal/ensemble"
	"nbhd/internal/metrics"
	"nbhd/internal/prompt"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

// evaluateClassifierSerial is the pre-cache, pre-concurrency reference
// implementation: re-render the corpus, perceive inside Classify, and
// accumulate one report in frame order. The tests below assert the
// concurrent path reproduces it bit-for-bit.
func evaluateClassifierSerial(p *Pipeline, c Classifier, opts LLMOptions) (*metrics.ClassReport, error) {
	frames := p.Study.Frames
	if opts.FrameLimit > 0 && opts.FrameLimit < len(frames) {
		frames = frames[:opts.FrameLimit]
	}
	indices := make([]int, len(frames))
	for i := range indices {
		indices[i] = i
	}
	examples, err := p.Study.RenderExamples(indices, p.cfg.LLMRenderSize)
	if err != nil {
		return nil, err
	}
	inds := scene.Indicators()
	var report metrics.ClassReport
	for i, ex := range examples {
		answers, err := c.Classify(vlm.Request{
			Image:       ex.Image,
			Indicators:  inds[:],
			Language:    opts.Language,
			Mode:        opts.Mode,
			Temperature: opts.Temperature,
			TopP:        opts.TopP,
		})
		if err != nil {
			return nil, err
		}
		var pred [scene.NumIndicators]bool
		copy(pred[:], answers)
		report.AddVector(pred, frames[i].Scene.Presence())
	}
	return &report, nil
}

func testModel(t *testing.T, id vlm.ModelID) *vlm.Model {
	t.Helper()
	profile, err := vlm.ProfileFor(id)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vlm.NewModel(profile)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testCommittee(t *testing.T) *ensemble.Committee {
	t.Helper()
	committee, err := ensemble.PaperCommittee()
	if err != nil {
		t.Fatal(err)
	}
	return committee
}

// TestEvaluatorMatchesSerial asserts the concurrent evaluator reproduces
// the serial reference bit-for-bit: same classifier, same options, same
// ClassReport — for single models, the voting committee, non-default
// request options, and FrameLimit, at several worker widths.
func TestEvaluatorMatchesSerial(t *testing.T) {
	p := smallPipeline(t, 12)
	cases := []struct {
		name       string
		classifier Classifier
		opts       LLMOptions
	}{
		{"gemini", testModel(t, vlm.Gemini15Pro), LLMOptions{}},
		{"chatgpt", testModel(t, vlm.ChatGPT4oMini), LLMOptions{}},
		{"claude", testModel(t, vlm.Claude37), LLMOptions{}},
		{"grok", testModel(t, vlm.Grok2), LLMOptions{}},
		{"committee", testCommittee(t), LLMOptions{}},
		{"sequential-spanish", testModel(t, vlm.Gemini15Pro), LLMOptions{Language: prompt.Spanish, Mode: prompt.Sequential}},
		{"sampling", testModel(t, vlm.Grok2), LLMOptions{Temperature: 1.5, TopP: 0.5}},
		{"frame-limit", testModel(t, vlm.Claude37), LLMOptions{FrameLimit: 7}},
		{"frame-limit-committee", testCommittee(t), LLMOptions{FrameLimit: 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := evaluateClassifierSerial(p, tc.classifier, tc.opts)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for _, workers := range []int{1, 3, 16} {
				ev := p.NewEvaluator(EvalConfig{Workers: workers})
				got, err := ev.EvaluateClassifier(context.Background(), tc.classifier, tc.opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if *got != *want {
					t.Errorf("workers=%d: report diverges from serial\ngot:  %+v\nwant: %+v", workers, *got, *want)
				}
			}
		})
	}
}

// TestEvaluateAllLLMsMatchesSerial asserts the concurrent multi-model
// sweep matches per-model serial references.
func TestEvaluateAllLLMsMatchesSerial(t *testing.T) {
	p := smallPipeline(t, 10)
	ev := p.NewEvaluator(EvalConfig{Workers: 4})
	got, err := ev.EvaluateAllLLMs(context.Background(), LLMOptions{})
	if err != nil {
		t.Fatalf("EvaluateAllLLMs: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("reports = %d, want 4", len(got))
	}
	for _, id := range vlm.AllModels() {
		want, err := evaluateClassifierSerial(p, testModel(t, id), LLMOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if *got[id] != *want {
			t.Errorf("%s: parallel report diverges from serial", id)
		}
	}
}

// TestRunMajorityVotingMatchesSerial asserts the committee sweep built
// from the concurrent reports matches the serial committee reference.
func TestRunMajorityVotingMatchesSerial(t *testing.T) {
	p := smallPipeline(t, 10)
	ev := p.NewEvaluator(EvalConfig{Workers: 4})
	reports, err := ev.EvaluateAllLLMs(context.Background(), LLMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	voting, err := ev.RunMajorityVoting(context.Background(), reports, LLMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(voting.Committee) != 3 {
		t.Fatalf("committee = %v", voting.Committee)
	}
	members := make([]*vlm.Model, 0, 3)
	for _, id := range voting.Committee {
		members = append(members, testModel(t, id))
	}
	committee, err := ensemble.NewCommittee(members...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := evaluateClassifierSerial(p, committee, LLMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if *voting.Report != *want {
		t.Error("voting report diverges from serial committee reference")
	}
}

// TestEvaluatorCancellation asserts a cancelled context aborts the sweep
// with the context's error.
func TestEvaluatorCancellation(t *testing.T) {
	p := smallPipeline(t, 8)
	ev := p.NewEvaluator(EvalConfig{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ev.EvaluateClassifier(ctx, testModel(t, vlm.Gemini15Pro), LLMOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, err = ev.EvaluateAllLLMs(ctx, LLMOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateAllLLMs err = %v, want context.Canceled", err)
	}
}

// failingClassifier errors on every frame, exercising first-error
// propagation through the worker pool.
type failingClassifier struct{}

func (failingClassifier) Classify(vlm.Request) ([]bool, error) {
	return nil, errors.New("boom")
}

func TestEvaluatorFirstErrorPropagation(t *testing.T) {
	p := smallPipeline(t, 6)
	ev := p.NewEvaluator(EvalConfig{Workers: 4})
	_, err := ev.EvaluateClassifier(context.Background(), failingClassifier{}, LLMOptions{})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected classification error, got %v", err)
	}
}

// TestEvaluatorSharesRenders asserts the whole evaluation stack — four
// models, voting committee, repeat sweeps — renders each frame exactly
// once at the LLM resolution.
func TestEvaluatorSharesRenders(t *testing.T) {
	p := smallPipeline(t, 8)
	ev := p.NewEvaluator(EvalConfig{})
	reports, err := ev.EvaluateAllLLMs(context.Background(), LLMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.RunMajorityVoting(context.Background(), reports, LLMOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.EvaluateClassifier(context.Background(), testModel(t, vlm.Gemini15Pro), LLMOptions{Language: prompt.Chinese}); err != nil {
		t.Fatal(err)
	}
	if got, want := p.RenderCache().Renders(), int64(p.Study.Len()); got != want {
		t.Errorf("renders = %d, want %d (one per frame)", got, want)
	}
}

// TestEvaluateBackendYOLOMatchesPresenceReport: the detector swept
// through the engine's backend path must equal the direct
// DetectorPresenceReport over the same corpus at the detector's
// resolution.
func TestEvaluateBackendYOLOMatchesPresenceReport(t *testing.T) {
	p := smallPipeline(t, 8)
	m, err := yolo.New(yolo.Config{InputSize: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := backend.NewYOLO(m, 0.25, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.NewEvaluator(EvalConfig{Workers: 4}).EvaluateBackend(context.Background(), b, LLMOptions{})
	if err != nil {
		t.Fatalf("EvaluateBackend: %v", err)
	}
	indices := make([]int, p.Study.Len())
	for i := range indices {
		indices[i] = i
	}
	examples, err := p.Study.RenderExamples(indices, 32)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.DetectorPresenceReport(m, examples, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("engine YOLO sweep diverges from DetectorPresenceReport\ngot:  %+v\nwant: %+v", *got, *want)
	}
}

// TestEvaluateBackendCNNMatchesEvaluate: the scene-classification CNN
// swept through the engine must equal the model's own Evaluate over the
// same corpus.
func TestEvaluateBackendCNNMatchesEvaluate(t *testing.T) {
	p := smallPipeline(t, 8)
	m, err := classify.New(classify.Config{InputSize: 32, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := backend.NewCNN(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.NewEvaluator(EvalConfig{Workers: 4}).EvaluateBackend(context.Background(), b, LLMOptions{})
	if err != nil {
		t.Fatalf("EvaluateBackend: %v", err)
	}
	indices := make([]int, p.Study.Len())
	for i := range indices {
		indices[i] = i
	}
	examples, err := p.Study.RenderExamples(indices, 32)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Evaluate(examples, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("engine CNN sweep diverges from Model.Evaluate\ngot:  %+v\nwant: %+v", *got, *want)
	}
}

// hintedBackend records how the engine drives it: batch sizes seen and
// the maximum number of concurrent Classify calls.
type hintedBackend struct {
	caps       backend.Capabilities
	mu         sync.Mutex
	inFlight   int
	maxSeen    int
	batchSizes []int
}

func (h *hintedBackend) Name() string                       { return "hinted" }
func (h *hintedBackend) Capabilities() backend.Capabilities { return h.caps }
func (h *hintedBackend) Classify(_ context.Context, req backend.BatchRequest) (backend.BatchResult, error) {
	h.mu.Lock()
	h.inFlight++
	if h.inFlight > h.maxSeen {
		h.maxSeen = h.inFlight
	}
	h.batchSizes = append(h.batchSizes, len(req.Items))
	h.mu.Unlock()
	time.Sleep(time.Millisecond)
	h.mu.Lock()
	h.inFlight--
	h.mu.Unlock()
	out := make([][]bool, len(req.Items))
	for i := range out {
		out[i] = make([]bool, scene.NumIndicators)
	}
	return backend.BatchResult{Answers: out}, nil
}

// TestEvaluateBackendHonorsCapabilityHints: batches respect
// PreferredBatch, concurrency respects MaxConcurrency, and the report
// still counts every frame.
func TestEvaluateBackendHonorsCapabilityHints(t *testing.T) {
	p := smallPipeline(t, 8) // 32 frames
	hb := &hintedBackend{caps: backend.Capabilities{PreferredBatch: 5, MaxConcurrency: 1}}
	rep, err := p.NewEvaluator(EvalConfig{Workers: 8}).EvaluateBackend(context.Background(), hb, LLMOptions{})
	if err != nil {
		t.Fatalf("EvaluateBackend: %v", err)
	}
	if hb.maxSeen != 1 {
		t.Errorf("max concurrent Classify calls = %d, want 1", hb.maxSeen)
	}
	total := 0
	for _, s := range hb.batchSizes {
		if s > 5 {
			t.Errorf("batch of %d exceeds preferred 5", s)
		}
		total += s
	}
	if total != p.Study.Len() {
		t.Errorf("classified %d frames, want %d", total, p.Study.Len())
	}
	// All-false predictions: every actually-present indicator counts as
	// a miss, so the report total must cover all frames.
	n := 0
	for _, ind := range scene.Indicators() {
		c := rep.Of(ind)
		n += c.TP + c.FP + c.TN + c.FN
	}
	if n != p.Study.Len()*scene.NumIndicators {
		t.Errorf("report cells = %d, want %d", n, p.Study.Len()*scene.NumIndicators)
	}
}

// TestEvaluateBackendRendersAtBackendSize: a backend that asks for its
// own resolution gets it, without disturbing the LLM-resolution cache.
func TestEvaluateBackendRendersAtBackendSize(t *testing.T) {
	p := smallPipeline(t, 4)
	m, err := classify.New(classify.Config{InputSize: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := backend.NewCNN(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewEvaluator(EvalConfig{}).EvaluateBackend(context.Background(), b, LLMOptions{}); err != nil {
		t.Fatalf("EvaluateBackend: %v", err)
	}
	// One render per frame at 32px; none at the LLM's 96px.
	if got, want := p.RenderCache().Renders(), int64(p.Study.Len()); got != want {
		t.Errorf("renders = %d, want %d", got, want)
	}
}

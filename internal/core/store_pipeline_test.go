package core

import (
	"context"
	"testing"

	"nbhd/internal/ensemble"
	"nbhd/internal/geo"
	"nbhd/internal/vlm"
)

// storePipeline builds a pipeline over a persistent frame store.
func storePipeline(t *testing.T, coords int, dir string) *Pipeline {
	t.Helper()
	p, err := NewPipeline(Config{Coordinates: coords, Seed: 5, DetectorInputSize: 32, LLMRenderSize: 64, StoreDir: dir})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	return p
}

// TestPipelineWarmStartZeroRenders is the acceptance criterion for the
// persistent tier at the pipeline level: a second pipeline over the
// same StoreDir classifies the full corpus without a single render.
func TestPipelineWarmStartZeroRenders(t *testing.T) {
	dir := t.TempDir()
	model, err := vlm.NewModel(vlm.BuiltinProfiles()[vlm.ChatGPT4oMini])
	if err != nil {
		t.Fatal(err)
	}

	cold := storePipeline(t, 6, dir)
	coldRep, err := cold.EvaluateClassifier(model, LLMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cold.RenderCache().Renders(); got != int64(cold.Study.Len()) {
		t.Fatalf("cold Renders = %d, want %d", got, cold.Study.Len())
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	warm := storePipeline(t, 6, dir)
	defer warm.Close()
	warmRep, err := warm.EvaluateClassifier(model, LLMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.RenderCache().Renders(); got != 0 {
		t.Fatalf("warm Renders = %d, want 0 (store must serve every frame)", got)
	}
	if got := warm.RenderCache().StoreHits(); got != int64(warm.Study.Len()) {
		t.Fatalf("warm StoreHits = %d, want %d", got, warm.Study.Len())
	}
	// Store-served frames are bit-identical to fresh renders, so the
	// classification reports must agree exactly.
	cp, cr, cf, ca := coldRep.Averages()
	wp, wr, wf, wa := warmRep.Averages()
	if cp != wp || cr != wr || cf != wf || ca != wa {
		t.Fatalf("warm report differs from cold: P/R/F1/acc %v/%v/%v/%v vs %v/%v/%v/%v",
			wp, wr, wf, wa, cp, cr, cf, ca)
	}
}

// TestFrameIndexMatchesStudy checks the lazy spatial index covers every
// frame and answers nearest-self exactly.
func TestFrameIndexMatchesStudy(t *testing.T) {
	p := smallPipeline(t, 8)
	ix := p.FrameIndex()
	if ix.Len() != p.Study.Len() {
		t.Fatalf("index Len = %d, want %d", ix.Len(), p.Study.Len())
	}
	for i, fr := range p.Study.Frames {
		res, ok := ix.Nearest(fr.Scene.Point.Coordinate)
		if !ok {
			t.Fatalf("Nearest(frame %d) found nothing", i)
		}
		if res.DistanceFeet != 0 {
			t.Fatalf("Nearest(frame %d) distance = %v, want 0", i, res.DistanceFeet)
		}
	}
	if again := p.FrameIndex(); again != ix {
		t.Fatal("FrameIndex rebuilt on second call")
	}
}

// TestNeighborhoodAtSubsetsCorpus runs the index-selected analysis
// around one corpus coordinate and checks it covers exactly the groups
// a linear distance scan selects.
func TestNeighborhoodAtSubsetsCorpus(t *testing.T) {
	p := smallPipeline(t, 16)
	committee, err := ensemble.PaperCommittee()
	if err != nil {
		t.Fatal(err)
	}
	b, err := localBackend(committee)
	if err != nil {
		t.Fatal(err)
	}
	center := p.Study.Frames[0].Scene.Point.Coordinate
	const radius = 30000.0
	res, err := p.NewEvaluator(EvalConfig{}).NeighborhoodAt(context.Background(), b, center, radius, 2000)
	if err != nil {
		t.Fatalf("NeighborhoodAt: %v", err)
	}
	// Reference: linear scan over coordinate groups.
	want := 0
	for g := 0; g < p.Study.Len()/FramesPerCoordinate; g++ {
		c := p.Study.Frames[g*FramesPerCoordinate].Scene.Point.Coordinate
		if center.DistanceFeet(c) <= radius {
			want++
		}
	}
	if want == 0 {
		t.Fatal("test radius selects nothing; widen it")
	}
	if len(res.Locations) != want {
		t.Fatalf("NeighborhoodAt locations = %d, linear scan says %d", len(res.Locations), want)
	}
	if len(res.Tracts) == 0 || len(res.Scores) != len(res.Tracts) {
		t.Fatalf("tracts = %d scores = %d", len(res.Tracts), len(res.Scores))
	}
	// Each selected location really is within the radius.
	for _, loc := range res.Locations {
		if d := center.DistanceFeet(loc.Coordinate); d > radius {
			t.Fatalf("location at %.1f ft exceeds radius %.0f", d, radius)
		}
	}
}

// TestNeighborhoodAtEmptySelection must fail loudly, not analyze an
// empty tract set.
func TestNeighborhoodAtEmptySelection(t *testing.T) {
	p := smallPipeline(t, 4)
	committee, err := ensemble.PaperCommittee()
	if err != nil {
		t.Fatal(err)
	}
	b, err := localBackend(committee)
	if err != nil {
		t.Fatal(err)
	}
	far := geo.Coordinate{Lat: -45, Lng: 170}
	if _, err := p.NewEvaluator(EvalConfig{}).NeighborhoodAt(context.Background(), b, far, 10, 2000); err == nil {
		t.Fatal("NeighborhoodAt with empty selection succeeded")
	}
}

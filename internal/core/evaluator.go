package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nbhd/internal/ensemble"
	"nbhd/internal/metrics"
	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

// PerceivingClassifier is a Classifier that can consume precomputed
// perception features, letting the evaluator perceive each frame once
// and share the evidence across every model and committee that sweeps
// the corpus.
type PerceivingClassifier interface {
	Classifier
	ClassifyPerceived(req vlm.Request, feats vlm.Features) ([]bool, error)
}

// The in-repo classifiers all support the fast path.
var (
	_ PerceivingClassifier = (*vlm.Model)(nil)
	_ PerceivingClassifier = (*ensemble.Committee)(nil)
)

// EvalConfig tunes the concurrent evaluator.
type EvalConfig struct {
	// Workers is the classification fan-out per sweep; zero defaults to
	// GOMAXPROCS.
	Workers int
}

// Evaluator sweeps classifiers over the pipeline's corpus concurrently.
// Frames are classified by a pool of workers feeding per-worker partial
// ClassReports that are merged at the end; renders and perception
// features come from caches shared with every other sweep on the same
// pipeline. Results are bit-identical to the serial path: each model
// answer is deterministic in (model, frame content, request), renders
// are deterministic in the scene, and confusion counts are
// order-independent under merge.
type Evaluator struct {
	pipe    *Pipeline
	workers int
}

// NewEvaluator builds an evaluator over the pipeline's shared caches.
func (p *Pipeline) NewEvaluator(cfg EvalConfig) *Evaluator {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Evaluator{pipe: p, workers: w}
}

// featEntry dedupes concurrent perception of one image.
type featEntry struct {
	once  sync.Once
	feats vlm.Features
	err   error
}

// features returns the cached perception features for a rendered frame,
// perceiving it exactly once across all concurrent sweeps.
func (p *Pipeline) features(img *render.Image) (vlm.Features, error) {
	v, _ := p.featCache.LoadOrStore(img, &featEntry{})
	e := v.(*featEntry)
	e.once.Do(func() { e.feats, e.err = vlm.Perceive(img) })
	return e.feats, e.err
}

// classifyCached runs one classifier on one rendered frame, feeding it
// cached perception features when the classifier supports them (pc is
// the classifier's PerceivingClassifier view, nil when it has none).
// Errors come back fully wrapped with the frame id.
func (p *Pipeline) classifyCached(c Classifier, pc PerceivingClassifier, id string, req vlm.Request) ([]bool, error) {
	var answers []bool
	var err error
	if pc != nil {
		var feats vlm.Features
		feats, err = p.features(req.Image)
		if err != nil {
			return nil, fmt.Errorf("core: perceive %s: %w", id, err)
		}
		answers, err = pc.ClassifyPerceived(req, feats)
	} else {
		answers, err = c.Classify(req)
	}
	if err != nil {
		return nil, fmt.Errorf("core: classify %s: %w", id, err)
	}
	return answers, nil
}

// EvaluateClassifier sweeps the classifier over the corpus with the
// evaluator's worker pool. The context cancels the sweep: the first
// error (or cancellation) stops all workers and is returned.
func (e *Evaluator) EvaluateClassifier(ctx context.Context, c Classifier, opts LLMOptions) (*metrics.ClassReport, error) {
	p := e.pipe
	n := p.Study.Len()
	if opts.FrameLimit > 0 && opts.FrameLimit < n {
		n = opts.FrameLimit
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	pc, _ := c.(PerceivingClassifier)
	inds := scene.Indicators()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	next.Store(-1)
	partials := make([]metrics.ClassReport, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(part *metrics.ClassReport) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				ex, err := p.cache.Example(i, p.cfg.LLMRenderSize)
				if err != nil {
					fail(fmt.Errorf("core: %w", err))
					return
				}
				req := vlm.Request{
					Image:       ex.Image,
					Indicators:  inds[:],
					Language:    opts.Language,
					Mode:        opts.Mode,
					Temperature: opts.Temperature,
					TopP:        opts.TopP,
				}
				answers, err := p.classifyCached(c, pc, ex.ID, req)
				if err != nil {
					fail(err)
					return
				}
				var pred [scene.NumIndicators]bool
				copy(pred[:], answers)
				part.AddVector(pred, p.Study.Frames[i].Scene.Presence())
			}
		}(&partials[w])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var report metrics.ClassReport
	for w := range partials {
		report.Merge(&partials[w])
	}
	return &report, nil
}

// EvaluateAllLLMs evaluates the four built-in models concurrently over
// the shared caches and returns their reports keyed by ID. The
// evaluator's worker budget is divided among the model sweeps so the
// total fan-out stays at ~e.workers rather than models × workers. The
// first model error cancels the others.
func (e *Evaluator) EvaluateAllLLMs(ctx context.Context, opts LLMOptions) (map[vlm.ModelID]*metrics.ClassReport, error) {
	ids := vlm.AllModels()
	models := make([]*vlm.Model, len(ids))
	for i, id := range ids {
		profile, err := vlm.ProfileFor(id)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		m, err := vlm.NewModel(profile)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		models[i] = m
	}
	perSweep := e.workers / len(ids)
	if perSweep < 1 {
		perSweep = 1
	}
	sub := &Evaluator{pipe: e.pipe, workers: perSweep}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	reports := make([]*metrics.ClassReport, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := sub.EvaluateClassifier(ctx, models[i], opts)
			if err != nil {
				errs[i] = fmt.Errorf("core: %s: %w", ids[i], err)
				cancel()
				return
			}
			reports[i] = rep
		}(i)
	}
	wg.Wait()
	// Report errors in model order so failures are deterministic even
	// when several models fail at once — but skip the secondary
	// cancellations our own cancel() induced in sibling sweeps, so the
	// root cause isn't masked.
	var canceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if canceled == nil {
				canceled = err
			}
			continue
		}
		return nil, err
	}
	if canceled != nil {
		return nil, canceled
	}
	out := make(map[vlm.ModelID]*metrics.ClassReport, len(ids))
	for i, id := range ids {
		out[id] = reports[i]
	}
	return out, nil
}

// RunMajorityVoting selects the top three models from the per-model
// reports and evaluates their committee over the shared caches — no
// frame is re-rendered or re-perceived after the per-model sweeps.
func (e *Evaluator) RunMajorityVoting(ctx context.Context, reports map[vlm.ModelID]*metrics.ClassReport, opts LLMOptions) (*VotingResult, error) {
	top, err := ensemble.SelectTop(reports, 3)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	models := make([]*vlm.Model, 0, len(top))
	ids := make([]vlm.ModelID, 0, len(top))
	for _, s := range top {
		profile, err := vlm.ProfileFor(s.ID)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		m, err := vlm.NewModel(profile)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		models = append(models, m)
		ids = append(ids, s.ID)
	}
	committee, err := ensemble.NewCommittee(models...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	report, err := e.EvaluateClassifier(ctx, committee, opts)
	if err != nil {
		return nil, err
	}
	return &VotingResult{Committee: ids, Report: report}, nil
}

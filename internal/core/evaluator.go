package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"nbhd/internal/analysis"
	"nbhd/internal/backend"
	"nbhd/internal/dataset"
	"nbhd/internal/ensemble"
	"nbhd/internal/geo"
	"nbhd/internal/metrics"
	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

// PerceivingClassifier is a Classifier that can consume precomputed
// perception features, letting the evaluator perceive each frame once
// and share the evidence across every model and committee that sweeps
// the corpus. It aliases the backend layer's definition so the
// fast-path contract has exactly one home.
type PerceivingClassifier = backend.PerceivingClassifier

// EvalConfig tunes the concurrent evaluator.
type EvalConfig struct {
	// Workers is the classification fan-out per sweep; zero defaults to
	// GOMAXPROCS.
	Workers int
}

// Evaluator sweeps classifier backends over the pipeline's corpus
// concurrently. Every backend family — builtin VLMs, committees, remote
// HTTP models, the YOLO detector, the CNN baseline — flows through the
// same path: frames come from the shared render cache at the backend's
// resolution, perception features come from the shared perception cache
// when the backend consumes them, batches fan out across a worker pool
// shaped by the backend's capability hints, and per-worker partial
// ClassReports are merged at the end. Results are bit-identical to a
// serial sweep: answers are deterministic in (backend, frame content,
// request), renders are deterministic in the scene, and confusion
// counts are order-independent under merge.
type Evaluator struct {
	pipe    *Pipeline
	workers int
}

// NewEvaluator builds an evaluator over the pipeline's shared caches.
func (p *Pipeline) NewEvaluator(cfg EvalConfig) *Evaluator {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Evaluator{pipe: p, workers: w}
}

// featEntry dedupes concurrent perception of one image.
type featEntry struct {
	once  sync.Once
	feats vlm.Features
	err   error
}

// features returns the cached perception features for a rendered frame,
// perceiving it exactly once across all concurrent sweeps.
func (p *Pipeline) features(img *render.Image) (vlm.Features, error) {
	v, _ := p.featCache.LoadOrStore(img, &featEntry{})
	e := v.(*featEntry)
	e.once.Do(func() { e.feats, e.err = vlm.Perceive(img) })
	return e.feats, e.err
}

// renderSizeFor resolves the resolution a backend's frames render at:
// its capability hint, or the pipeline's LLM render size.
func (p *Pipeline) renderSizeFor(caps backend.Capabilities) int {
	if caps.RenderSize > 0 {
		return caps.RenderSize
	}
	return p.cfg.LLMRenderSize
}

// frameItems builds backend items for corpus frames [start,end) from the
// shared render and perception caches at the given resolution and capture
// condition — the one batch-assembly path every sweep (classification and
// neighborhood analysis alike) goes through.
func (p *Pipeline) frameItems(start, end, size int, cond string, wantFeats bool) ([]backend.Item, error) {
	items := make([]backend.Item, 0, end-start)
	for i := start; i < end; i++ {
		ex, err := p.cache.CondExample(i, size, cond)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		item := backend.Item{ID: ex.ID, Image: ex.Image}
		if wantFeats {
			feats, err := p.features(ex.Image)
			if err != nil {
				return nil, fmt.Errorf("core: perceive %s: %w", ex.ID, err)
			}
			item.Feats = &feats
		}
		items = append(items, item)
	}
	return items, nil
}

// classifySemFor returns the semaphore bounding concurrent Classify
// calls for a backend, or nil when the worker count already respects the
// backend's limit. Workers above the cap still render and perceive in
// parallel (the caches' main win), queuing only for classification.
func classifySemFor(caps backend.Capabilities, workers int) chan struct{} {
	if caps.MaxConcurrency > 0 && caps.MaxConcurrency < workers {
		return make(chan struct{}, caps.MaxConcurrency)
	}
	return nil
}

// localBackend adapts an in-process Classifier to the backend layer,
// labeling the known families for better errors.
func localBackend(c Classifier) (*backend.Local, error) {
	switch v := c.(type) {
	case *vlm.Model:
		return backend.NewVLM(v)
	case *ensemble.Committee:
		return backend.NewCommittee(v)
	default:
		return backend.NewLocal("local", v)
	}
}

// EvaluateClassifier sweeps an in-process classifier over the corpus by
// adapting it to the backend layer — the historical entry point for
// models and committees, now one caller of EvaluateBackend among five
// backend families.
func (e *Evaluator) EvaluateClassifier(ctx context.Context, c Classifier, opts LLMOptions) (*metrics.ClassReport, error) {
	b, err := localBackend(c)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return e.EvaluateBackend(ctx, b, opts)
}

// EvaluateBackend sweeps any classifier backend over the corpus with the
// evaluator's worker pool. The backend's capability hints shape the
// sweep: frames render (once, cached) at its preferred resolution,
// perception features are precomputed only when it consumes them,
// classification happens in batches of its preferred size, and
// concurrent Classify calls are bounded by its maximum concurrency —
// rendering and perception stay fully parallel even for single-file
// backends. The context cancels the sweep: the first error (or
// cancellation) stops all workers and is returned.
func (e *Evaluator) EvaluateBackend(ctx context.Context, b backend.Backend, opts LLMOptions) (*metrics.ClassReport, error) {
	p := e.pipe
	if !dataset.ValidCondition(opts.Condition) {
		return nil, fmt.Errorf("core: unknown capture condition %q (have %v)", opts.Condition, dataset.Conditions())
	}
	caps := b.Capabilities()
	n := p.Study.Len()
	if opts.FrameLimit > 0 && opts.FrameLimit < n {
		n = opts.FrameLimit
	}
	size := p.renderSizeFor(caps)
	batch := caps.PreferredBatch
	if batch < 1 {
		batch = 1
	}
	nBatches := (n + batch - 1) / batch
	workers := e.workers
	if workers > nBatches {
		workers = nBatches
	}
	if workers < 1 {
		workers = 1
	}
	classifySem := classifySemFor(caps, workers)
	options := opts.backendOptions()
	inds := options.Indicators

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	next.Store(-1)
	partials := make([]metrics.ClassReport, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(part *metrics.ClassReport) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				bi := int(next.Add(1))
				if bi >= nBatches {
					return
				}
				start := bi * batch
				end := start + batch
				if end > n {
					end = n
				}
				items, err := p.frameItems(start, end, size, opts.Condition, caps.PerceivedFeatures)
				if err != nil {
					fail(err)
					return
				}
				if classifySem != nil {
					select {
					case classifySem <- struct{}{}:
					case <-ctx.Done():
						return
					}
				}
				res, err := b.Classify(ctx, backend.BatchRequest{Items: items, Options: options})
				if classifySem != nil {
					<-classifySem
				}
				if err != nil {
					fail(fmt.Errorf("core: %w", err))
					return
				}
				if len(res.Answers) != len(items) {
					fail(fmt.Errorf("core: backend %s returned %d answer vectors for %d items", b.Name(), len(res.Answers), len(items)))
					return
				}
				for k := range items {
					if len(res.Answers[k]) != len(inds) {
						fail(fmt.Errorf("core: backend %s answered %d indicators for %s, want %d", b.Name(), len(res.Answers[k]), items[k].ID, len(inds)))
						return
					}
					var pred [scene.NumIndicators]bool
					copy(pred[:], res.Answers[k])
					part.AddVector(pred, p.Study.Frames[start+k].Scene.Presence())
				}
			}
		}(&partials[w])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var report metrics.ClassReport
	for w := range partials {
		report.Merge(&partials[w])
	}
	return &report, nil
}

// EvaluateBackendSet evaluates several backends concurrently over the
// shared caches and returns their reports in input order. The
// evaluator's worker budget is divided among the sweeps so the total
// fan-out stays at ~e.workers rather than backends × workers. The first
// backend error cancels the others.
func (e *Evaluator) EvaluateBackendSet(ctx context.Context, backends []backend.Backend, opts LLMOptions) ([]*metrics.ClassReport, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("core: no backends to evaluate")
	}
	perSweep := e.workers / len(backends)
	if perSweep < 1 {
		perSweep = 1
	}
	sub := &Evaluator{pipe: e.pipe, workers: perSweep}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	reports := make([]*metrics.ClassReport, len(backends))
	errs := make([]error, len(backends))
	var wg sync.WaitGroup
	for i := range backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := sub.EvaluateBackend(ctx, backends[i], opts)
			if err != nil {
				errs[i] = fmt.Errorf("core: %s: %w", backends[i].Name(), err)
				cancel()
				return
			}
			reports[i] = rep
		}(i)
	}
	wg.Wait()
	// Report errors in input order so failures are deterministic even
	// when several backends fail at once — but skip the secondary
	// cancellations our own cancel() induced in sibling sweeps, so the
	// root cause isn't masked.
	var canceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if canceled == nil {
				canceled = err
			}
			continue
		}
		return nil, err
	}
	if canceled != nil {
		return nil, canceled
	}
	return reports, nil
}

// EvaluateModels evaluates one backend per model concurrently and
// returns their reports keyed by ID — the map-shaped veneer over
// EvaluateBackendSet the model sweeps use.
func (e *Evaluator) EvaluateModels(ctx context.Context, backends map[vlm.ModelID]backend.Backend, opts LLMOptions) (map[vlm.ModelID]*metrics.ClassReport, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("core: no backends to evaluate")
	}
	ids := make([]vlm.ModelID, 0, len(backends))
	for id := range backends {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	ordered := make([]backend.Backend, len(ids))
	for i, id := range ids {
		ordered[i] = backends[id]
	}
	reports, err := e.EvaluateBackendSet(ctx, ordered, opts)
	if err != nil {
		return nil, err
	}
	out := make(map[vlm.ModelID]*metrics.ClassReport, len(ids))
	for i, id := range ids {
		out[id] = reports[i]
	}
	return out, nil
}

// EvaluateAllLLMs evaluates the four built-in models concurrently over
// the shared caches and returns their reports keyed by ID. Each model
// backend opens from its one-line declarative spec — the same spec a
// full experiment names.
func (e *Evaluator) EvaluateAllLLMs(ctx context.Context, opts LLMOptions) (map[vlm.ModelID]*metrics.ClassReport, error) {
	backends := make(map[vlm.ModelID]backend.Backend, len(vlm.AllModels()))
	for _, id := range vlm.AllModels() {
		b, err := backend.Open(ctx, backend.Spec{Kind: "vlm", Model: string(id)})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		backends[id] = b
	}
	return e.EvaluateModels(ctx, backends, opts)
}

// RunMajorityVoting selects the top three models from the per-model
// reports and evaluates their majority vote over the shared caches — no
// frame is re-rendered or re-perceived after the per-model sweeps. The
// committee runs through the generic voting composite, the same path a
// declarative vote-top sweep takes; its reports are bit-identical to the
// historical in-process committee.
func (e *Evaluator) RunMajorityVoting(ctx context.Context, reports map[vlm.ModelID]*metrics.ClassReport, opts LLMOptions) (*VotingResult, error) {
	top, err := ensemble.SelectTop(reports, 3)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	members := make([]backend.Backend, 0, len(top))
	ids := make([]vlm.ModelID, 0, len(top))
	for _, s := range top {
		b, err := backend.Open(ctx, backend.Spec{Kind: "vlm", Model: string(s.ID)})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		members = append(members, b)
		ids = append(ids, s.ID)
	}
	voting, err := backend.NewVoting("majority voting", members...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	report, err := e.EvaluateBackend(ctx, voting, opts)
	if err != nil {
		return nil, err
	}
	return &VotingResult{Committee: ids, Report: report}, nil
}

// AnalyzeNeighborhood runs a backend over the whole corpus, fuses the
// four headings of each coordinate with any-vote fusion, and produces
// tract-level environment scores and health-outcome associations.
// Coordinate groups fan out across the worker pool (each group is one
// backend batch fed from the shared caches); results are bit-identical
// to the serial sweep because fused locations land at their coordinate's
// index regardless of completion order. The context cancels mid-sweep.
func (e *Evaluator) AnalyzeNeighborhood(ctx context.Context, b backend.Backend, tractFeet float64) (*NeighborhoodResult, error) {
	nGroups := e.pipe.Study.Len() / FramesPerCoordinate
	groups := make([]int, nGroups)
	for i := range groups {
		groups[i] = i
	}
	locations, err := e.classifyGroups(ctx, b, groups)
	if err != nil {
		return nil, err
	}
	return e.pipe.neighborhoodAnalysis(locations, tractFeet)
}

// NeighborhoodAt runs the same downstream analysis over only the corpus
// coordinates within radiusFeet of center, selected in O(log n) through
// the pipeline's spatial index instead of classifying the whole corpus.
// Selection is exact (bit-identical to a linear distance scan) and the
// chosen groups are classified in ascending coordinate-group order, so
// the result is deterministic in (backend, center, radius).
func (e *Evaluator) NeighborhoodAt(ctx context.Context, b backend.Backend, center geo.Coordinate, radiusFeet, tractFeet float64) (*NeighborhoodResult, error) {
	hits := e.pipe.FrameIndex().Radius(center, radiusFeet)
	seen := make(map[int]bool, len(hits)/FramesPerCoordinate)
	groups := make([]int, 0, len(hits)/FramesPerCoordinate)
	for _, h := range hits {
		g := h.ID / FramesPerCoordinate
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no corpus coordinates within %.0f ft of (%.5f, %.5f)", radiusFeet, center.Lat, center.Lng)
	}
	sort.Ints(groups)
	locations, err := e.classifyGroups(ctx, b, groups)
	if err != nil {
		return nil, err
	}
	return e.pipe.neighborhoodAnalysis(locations, tractFeet)
}

// classifyGroups classifies the given coordinate groups (group g covers
// corpus frames [g*FramesPerCoordinate, (g+1)*FramesPerCoordinate)) and
// fuses each group's headings with any-vote fusion. Groups fan out
// across the worker pool, one backend batch per group fed from the
// shared caches; locations[i] is groups[i]'s fused profile regardless of
// completion order. This is the one classification path under both
// AnalyzeNeighborhood (all groups) and NeighborhoodAt (index-selected
// groups).
func (e *Evaluator) classifyGroups(ctx context.Context, b backend.Backend, groups []int) ([]analysis.LocationProfile, error) {
	p := e.pipe
	caps := b.Capabilities()
	size := p.renderSizeFor(caps)
	options := LLMOptions{}.backendOptions()
	workers := e.workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers < 1 {
		workers = 1
	}
	classifySem := classifySemFor(caps, workers)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		next     atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	next.Store(-1)
	locations := make([]analysis.LocationProfile, len(groups))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				gi := int(next.Add(1))
				if gi >= len(groups) {
					return
				}
				start := groups[gi] * FramesPerCoordinate
				items, err := p.frameItems(start, start+FramesPerCoordinate, size, "", caps.PerceivedFeatures)
				if err != nil {
					fail(err)
					return
				}
				if classifySem != nil {
					select {
					case classifySem <- struct{}{}:
					case <-ctx.Done():
						return
					}
				}
				res, err := b.Classify(ctx, backend.BatchRequest{Items: items, Options: options})
				if classifySem != nil {
					<-classifySem
				}
				if err != nil {
					fail(fmt.Errorf("core: %w", err))
					return
				}
				if len(res.Answers) != len(items) {
					fail(fmt.Errorf("core: backend %s returned %d answer vectors for %d items", b.Name(), len(res.Answers), len(items)))
					return
				}
				perHeading := make([][scene.NumIndicators]bool, 0, FramesPerCoordinate)
				for k := range items {
					var v [scene.NumIndicators]bool
					copy(v[:], res.Answers[k])
					perHeading = append(perHeading, v)
				}
				fused, err := ensemble.FuseHeadings(perHeading, ensemble.FuseAny)
				if err != nil {
					fail(fmt.Errorf("core: %w", err))
					return
				}
				fr := p.Study.Frames[start]
				locations[gi] = analysis.LocationProfile{
					Coordinate: fr.Scene.Point.Coordinate,
					County:     fr.County,
					Presence:   fused,
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return locations, nil
}

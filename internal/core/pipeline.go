// Package core orchestrates the paper's end-to-end methodology (Fig. 1):
// collect and label a street-view corpus, train the supervised detector
// baseline, evaluate LLMs with prompt strategies, majority-vote the top
// models, and run the downstream neighborhood-environment analysis.
// Everything below it is a substrate; this package is the public face
// the command-line tools and examples drive.
package core

import (
	"context"
	"fmt"
	"sync"

	"nbhd/internal/analysis"
	"nbhd/internal/backend"
	"nbhd/internal/classify"
	"nbhd/internal/dataset"
	"nbhd/internal/geoindex"
	"nbhd/internal/labelme"
	"nbhd/internal/metrics"
	"nbhd/internal/prompt"
	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/store"
	"nbhd/internal/vlm"
	"nbhd/internal/yolo"
)

// Classifier is anything that answers per-indicator Yes/No questions
// about an image: a single simulated LLM, a majority-voting committee,
// or any test double. It aliases the backend layer's definition — one
// interface serves both the engine's public surface and the adapters.
type Classifier = backend.Classifier

// Config parameterizes a pipeline run.
type Config struct {
	// Coordinates is the number of sampled coordinates (x4 headings).
	// Zero defaults to the paper's 300.
	Coordinates int
	// Seed drives all generation.
	Seed int64
	// DetectorInputSize is the detector's render/input resolution; zero
	// defaults to 64.
	DetectorInputSize int
	// LLMRenderSize is the resolution of frames sent to LLMs; zero
	// defaults to 96.
	LLMRenderSize int
	// StoreDir, when non-empty, opens (creating on demand) a persistent
	// frame store there and serves renders through it: frames already in
	// the store are memory-mapped instead of re-rendered, and fresh
	// renders are persisted for every later run. Pipelines with a
	// StoreDir own the store and must be Closed.
	StoreDir string
	// Morphology names the procedural world family the corpus counties
	// are generated from (world.Names); empty keeps the legacy study
	// world.
	Morphology string
	// Condition names the corpus-level capture condition
	// (dataset.Conditions); empty or "clean" renders clean frames.
	// Supervised baselines train on the conditioned corpus; evaluation
	// sweeps can override per sweep via LLMOptions.Condition.
	Condition string
}

func (c Config) withDefaults() Config {
	if c.Coordinates == 0 {
		c.Coordinates = dataset.StudyCoordinates
	}
	if c.DetectorInputSize == 0 {
		c.DetectorInputSize = 64
	}
	if c.LLMRenderSize == 0 {
		c.LLMRenderSize = 96
	}
	return c
}

// Pipeline holds the assembled corpus and its derived artifacts, plus
// the render and perception caches every evaluation sweep shares.
type Pipeline struct {
	cfg   Config
	Study *dataset.Study
	// Annotations is the LabelMe store built from the corpus.
	Annotations *labelme.Store

	// cache memoizes rendered frames per resolution; featCache memoizes
	// perception features per rendered image. Together they guarantee
	// each frame is rendered and perceived exactly once no matter how
	// many models, committees, languages, or sweeps run over it.
	cache     *dataset.RenderCache
	featCache sync.Map // *render.Image -> *featEntry

	// frameStore is the persistent render tier (nil without a StoreDir);
	// the cache above consults it before rendering.
	frameStore *store.Store

	// geo is the lazily built spatial index over the corpus frames.
	geoOnce sync.Once
	geo     *geoindex.Index
}

// NewPipeline assembles the corpus and annotations.
func NewPipeline(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	study, err := dataset.BuildStudy(dataset.StudyConfig{
		Coordinates: cfg.Coordinates,
		Seed:        cfg.Seed,
		Morphology:  cfg.Morphology,
		Condition:   cfg.Condition,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	labeler, err := labelme.NewLabeler(labelme.LabelerConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ann := labelme.NewStore()
	for _, fr := range study.Frames {
		rec, err := labeler.Annotate(fr.Scene, cfg.DetectorInputSize, cfg.DetectorInputSize)
		if err != nil {
			return nil, fmt.Errorf("core: annotate %s: %w", fr.Scene.ID, err)
		}
		if err := ann.Put(rec); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	p := &Pipeline{cfg: cfg, Study: study, Annotations: ann}
	if cfg.StoreDir != "" {
		fs, err := store.Open(cfg.StoreDir, store.Options{})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		p.frameStore = fs
		p.cache = dataset.NewPersistentRenderCache(study, fs)
	} else {
		p.cache = dataset.NewRenderCache(study)
	}
	return p, nil
}

// Close releases the persistent frame store, flushing its index. A
// pipeline without a StoreDir has nothing to release; Close is then a
// no-op, so defer p.Close() is always safe.
func (p *Pipeline) Close() error {
	if p.frameStore != nil {
		return p.frameStore.Close()
	}
	return nil
}

// RenderCache exposes the pipeline's shared render cache.
func (p *Pipeline) RenderCache() *dataset.RenderCache { return p.cache }

// FrameStore exposes the persistent render tier, or nil when the
// pipeline was built without a StoreDir.
func (p *Pipeline) FrameStore() *store.Store { return p.frameStore }

// FrameIndex returns the spatial index over the corpus frames (entry ID
// = frame index in Study.Frames), building it on first use. Queries are
// exact: nearest and radius results are bit-identical to a linear scan
// with geo.Coordinate.DistanceFeet.
func (p *Pipeline) FrameIndex() *geoindex.Index {
	p.geoOnce.Do(func() {
		entries := make([]geoindex.Entry, len(p.Study.Frames))
		for i, fr := range p.Study.Frames {
			entries[i] = geoindex.Entry{Coord: fr.Scene.Point.Coordinate, ID: i}
		}
		p.geo = geoindex.Build(entries)
	})
	return p.geo
}

// BaselineResult is the trained-detector evaluation (Table I).
type BaselineResult struct {
	Model  *yolo.Model
	Report *metrics.ClassReport
	AP     map[scene.Indicator]metrics.APResult
	MAP50  float64
}

// BaselineOptions tunes detector training.
type BaselineOptions struct {
	// Epochs defaults to the paper's 20; BatchSize to 16.
	Epochs, BatchSize int
	// Augment applies the given ops to the training split before
	// training (Fig. 2 ablation arms).
	Augment []dataset.AugmentOp
	// NoiseSNRdB, when non-zero, corrupts the *test* split at this SNR
	// (Fig. 3).
	NoiseSNRdB float64
	// Progress receives per-epoch losses.
	Progress func(epoch int, loss float64)
	// Stop, when non-nil, is polled at epoch boundaries; a non-nil
	// return aborts training with that error (pass ctx.Err for
	// cancellable training).
	Stop func() error
}

// trainSplitExamples builds the supervised baselines' shared training
// protocol: 70/20/10 split at Seed+1, render the training frames at the
// detector resolution, and apply the Fig. 2 augmentation arms. The
// detector and the scene CNN both train on exactly this corpus, which
// is what makes their Fig. 5 comparison fair.
func (p *Pipeline) trainSplitExamples(opts BaselineOptions) ([]dataset.Example, dataset.Split, error) {
	split, err := p.Study.Split(dataset.PaperSplit(), p.cfg.Seed+1)
	if err != nil {
		return nil, dataset.Split{}, fmt.Errorf("core: %w", err)
	}
	train, err := p.Study.RenderExamples(split.Train, p.cfg.DetectorInputSize)
	if err != nil {
		return nil, dataset.Split{}, fmt.Errorf("core: %w", err)
	}
	if len(opts.Augment) > 0 {
		train, err = dataset.Augment(train, opts.Augment, p.cfg.Seed+2)
		if err != nil {
			return nil, dataset.Split{}, fmt.Errorf("core: %w", err)
		}
	}
	return train, split, nil
}

// TrainBaseline runs the paper's supervised pipeline: 70/20/10 split,
// train the detector, evaluate P/R/F1 and mAP50 on the test split.
func (p *Pipeline) TrainBaseline(opts BaselineOptions) (*BaselineResult, error) {
	model, split, err := p.trainDetectorModel(opts)
	if err != nil {
		return nil, err
	}
	test, err := p.Study.RenderExamples(split.Test, p.cfg.DetectorInputSize)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.NoiseSNRdB != 0 {
		test = dataset.AddNoise(test, opts.NoiseSNRdB, p.cfg.Seed+3)
	}
	return p.EvaluateDetector(model, test)
}

// trainDetectorModel trains the detector on the shared split protocol
// and returns it with the split — the training half of TrainBaseline,
// shared with the backend environment's training hook.
func (p *Pipeline) trainDetectorModel(opts BaselineOptions) (*yolo.Model, dataset.Split, error) {
	train, split, err := p.trainSplitExamples(opts)
	if err != nil {
		return nil, dataset.Split{}, err
	}
	model, err := yolo.New(yolo.Config{InputSize: p.cfg.DetectorInputSize, Seed: p.cfg.Seed + 4})
	if err != nil {
		return nil, dataset.Split{}, fmt.Errorf("core: %w", err)
	}
	err = model.Train(train, yolo.TrainConfig{
		Epochs:    opts.Epochs,
		BatchSize: opts.BatchSize,
		Seed:      p.cfg.Seed + 5,
		Progress:  opts.Progress,
		Stop:      opts.Stop,
	})
	if err != nil {
		return nil, dataset.Split{}, fmt.Errorf("core: %w", err)
	}
	return model, split, nil
}

// EvaluateDetector scores a trained detector on examples.
func (p *Pipeline) EvaluateDetector(model *yolo.Model, test []dataset.Example) (*BaselineResult, error) {
	evals, err := model.Evaluate(test, 0.25, 0.45)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	report, err := metrics.DetectionReport(evals, 0.25, metrics.IoU50)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ap, err := metrics.APPerClass(evals, metrics.IoU50)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &BaselineResult{Model: model, Report: report, AP: ap, MAP50: metrics.MeanAP(ap)}, nil
}

// DetectorPresenceReport converts detections to image-level presence
// predictions (an indicator is "present" when any detection of that class
// clears the score threshold) and scores them like an LLM — the
// comparison Fig. 5 makes between YOLOv11 and the LLMs. Frames run
// through the detector's batched inference path in chunks; results are
// bit-identical to the per-frame sweep.
func (p *Pipeline) DetectorPresenceReport(model *yolo.Model, examples []dataset.Example, scoreThresh float64) (*metrics.ClassReport, error) {
	const chunk = 16
	var report metrics.ClassReport
	imgs := make([]*render.Image, 0, chunk)
	for start := 0; start < len(examples); start += chunk {
		end := start + chunk
		if end > len(examples) {
			end = len(examples)
		}
		imgs = imgs[:0]
		for i := start; i < end; i++ {
			imgs = append(imgs, examples[i].Image)
		}
		batchDets, err := model.DetectBatch(imgs, scoreThresh, 0.45)
		if err != nil {
			return nil, fmt.Errorf("core: detect batch starting at %s: %w", examples[start].ID, err)
		}
		for k, dets := range batchDets {
			var pred [scene.NumIndicators]bool
			for _, d := range dets {
				if idx := d.Class.Index(); idx >= 0 {
					pred[idx] = true
				}
			}
			report.AddVector(pred, examples[start+k].Presence())
		}
	}
	return &report, nil
}

// TrainSceneCNN trains the multi-label scene-classification baseline
// (§IV-B3) on the same 70/20/10 split protocol as the detector and
// returns the trained model, ready to wrap in a backend.CNN for
// engine-driven presence evaluation.
func (p *Pipeline) TrainSceneCNN(opts BaselineOptions) (*classify.Model, error) {
	train, _, err := p.trainSplitExamples(opts)
	if err != nil {
		return nil, err
	}
	model, err := classify.New(classify.Config{InputSize: p.cfg.DetectorInputSize, Seed: p.cfg.Seed + 6})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	err = model.Train(train, classify.TrainConfig{
		Epochs:    opts.Epochs,
		BatchSize: opts.BatchSize,
		Seed:      p.cfg.Seed + 7,
		Progress:  opts.Progress,
		Stop:      opts.Stop,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return model, nil
}

// pipelineEnv implements backend.Env over a pipeline, so supervised
// backend specs (yolo, cnn) train on the run's corpus split when opened.
type pipelineEnv struct{ p *Pipeline }

// TrainDetector trains the detector baseline for the given epochs; the
// context cancels at epoch boundaries.
func (e pipelineEnv) TrainDetector(ctx context.Context, epochs int) (*yolo.Model, error) {
	model, _, err := e.p.trainDetectorModel(BaselineOptions{Epochs: epochs, Stop: func() error { return ctx.Err() }})
	return model, err
}

// TrainSceneCNN trains the scene-classification baseline for the given
// epochs; the context cancels at epoch boundaries.
func (e pipelineEnv) TrainSceneCNN(ctx context.Context, epochs int) (*classify.Model, error) {
	return e.p.TrainSceneCNN(BaselineOptions{Epochs: epochs, Stop: func() error { return ctx.Err() }})
}

// BackendEnv returns the pipeline's backend-opening environment: pass it
// to backend.OpenWith so declarative yolo/cnn specs train on this
// pipeline's corpus split.
func (p *Pipeline) BackendEnv() backend.Env { return pipelineEnv{p} }

// LLMOptions tunes an LLM evaluation sweep.
type LLMOptions struct {
	// Language defaults to English; Mode to parallel.
	Language prompt.Language
	Mode     prompt.Mode
	// Temperature/TopP forward to the models (zero = defaults).
	Temperature, TopP float64
	// FrameLimit caps the number of frames evaluated (0 = all).
	FrameLimit int
	// Condition overrides the capture condition frames are evaluated
	// under: empty inherits the corpus's condition, dataset.ConditionClean
	// forces clean frames, any other registered condition degrades the
	// cached clean renders — the train-clean/test-degraded knob.
	Condition string
}

// backendOptions lowers the sweep options to the backend layer's request
// knobs over the full indicator set — the single conversion point
// between the two option vocabularies.
func (o LLMOptions) backendOptions() backend.Options {
	inds := scene.Indicators()
	return backend.Options{
		Indicators:  inds[:],
		Language:    o.Language,
		Mode:        o.Mode,
		Temperature: o.Temperature,
		TopP:        o.TopP,
	}
}

// EvaluateClassifier sweeps a classifier over the corpus and returns the
// per-class confusion report (the layout of Tables III-VI). It runs the
// concurrent evaluator at default width over the pipeline's shared
// caches; results are bit-identical to the historical serial sweep.
func (p *Pipeline) EvaluateClassifier(c Classifier, opts LLMOptions) (*metrics.ClassReport, error) {
	return p.NewEvaluator(EvalConfig{}).EvaluateClassifier(context.Background(), c, opts)
}

// EvaluateBackend sweeps any classifier backend — local model,
// committee, remote HTTP, YOLO presence, CNN baseline — over the corpus
// through the same engine and caches.
func (p *Pipeline) EvaluateBackend(b backend.Backend, opts LLMOptions) (*metrics.ClassReport, error) {
	return p.NewEvaluator(EvalConfig{}).EvaluateBackend(context.Background(), b, opts)
}

// EvaluateAllLLMs runs the four built-in models concurrently and returns
// their reports keyed by ID.
func (p *Pipeline) EvaluateAllLLMs(opts LLMOptions) (map[vlm.ModelID]*metrics.ClassReport, error) {
	return p.NewEvaluator(EvalConfig{}).EvaluateAllLLMs(context.Background(), opts)
}

// VotingResult is the majority-voting evaluation (Fig. 5's last bar).
type VotingResult struct {
	Committee []vlm.ModelID
	Report    *metrics.ClassReport
}

// RunMajorityVoting selects the top three models from the per-model
// reports and evaluates their committee over the shared caches.
func (p *Pipeline) RunMajorityVoting(reports map[vlm.ModelID]*metrics.ClassReport, opts LLMOptions) (*VotingResult, error) {
	return p.NewEvaluator(EvalConfig{}).RunMajorityVoting(context.Background(), reports, opts)
}

// NeighborhoodResult is the downstream analysis output.
type NeighborhoodResult struct {
	Locations    []analysis.LocationProfile
	Tracts       []analysis.TractProfile
	Scores       []analysis.EnvironmentScore
	Associations []analysis.Association
}

// AnalyzeNeighborhood runs a classifier over the corpus, fuses the four
// headings of each coordinate, and produces tract-level environment
// scores and health-outcome associations. Legacy shim: it adapts the
// classifier to the backend layer and delegates to the evaluator's
// concurrent, cancellable sweep — declarative runs name the same step
// as an analysis in an experiment spec.
func (p *Pipeline) AnalyzeNeighborhood(c Classifier, tractCellFeet float64) (*NeighborhoodResult, error) {
	b, err := localBackend(c)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return p.NewEvaluator(EvalConfig{}).AnalyzeNeighborhood(context.Background(), b, tractCellFeet)
}

// neighborhoodAnalysis runs the downstream analysis chain — tract
// bucketing, environment scoring, synthetic outcomes, associations —
// over fused per-coordinate locations.
func (p *Pipeline) neighborhoodAnalysis(locations []analysis.LocationProfile, tractCellFeet float64) (*NeighborhoodResult, error) {
	tracts, err := analysis.Tracts(locations, tractCellFeet)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	scores := analysis.Score(tracts)
	health := analysis.DefaultObesityModel(p.cfg.Seed + 9)
	outcomes, err := health.Generate(tracts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	assocs, err := analysis.Associations(tracts, outcomes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &NeighborhoodResult{
		Locations:    locations,
		Tracts:       tracts,
		Scores:       scores,
		Associations: assocs,
	}, nil
}

// FramesPerCoordinate is the number of frames per sampled coordinate (one
// per cardinal heading).
const FramesPerCoordinate = 4

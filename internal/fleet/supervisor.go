package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// SpawnFunc builds replica idx (0-based) with its ring ID. The
// supervisor calls it once per configured replica at Start; cmd
// binaries supply an in-process or exec implementation.
type SpawnFunc func(ctx context.Context, idx int, id string) (Replica, error)

// replicaState tracks one managed replica's health trajectory.
type replicaState struct {
	replica Replica
	fails   int // consecutive failed polls
	inRing  bool
	retired bool // drained on purpose; never re-admit
}

// Supervisor owns the fleet's replica lifecycle: it spawns the
// configured replica count, waits for each one's first healthy
// /healthz, admits them to the ring, and then keeps polling — a replica
// that fails FailAfter consecutive polls leaves the ring (generation
// bump, so the router's failover stops paying for it on every request)
// and is re-admitted the moment it polls healthy again. DrainReplica
// runs the deliberate retirement path: out of the ring first, SIGTERM
// (or in-process Drain) second, so zero new requests race the drain.
type Supervisor struct {
	cfg   Config
	spawn SpawnFunc
	ring  *Ring

	client *http.Client

	mu          sync.Mutex
	replicas    map[string]*replicaState
	order       []string
	pollStarted bool

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// NewSupervisor assembles a supervisor; call Start to spawn the fleet.
func NewSupervisor(cfg Config, spawn SpawnFunc) *Supervisor {
	cfg = cfg.withDefaults()
	poll := time.Duration(cfg.HealthPollMS) * time.Millisecond
	return &Supervisor{
		cfg:   cfg,
		spawn: spawn,
		ring:  NewRing(cfg.VirtualNodes),
		client: &http.Client{
			Timeout: poll * 4,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 4,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		replicas: make(map[string]*replicaState),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
}

// ReplicaID names replica idx on the ring: replica-0, replica-1, ...
func ReplicaID(idx int) string { return fmt.Sprintf("replica-%d", idx) }

// Start spawns every configured replica, waits until each answers
// /healthz 200 (bounded by StartTimeoutMS), admits them all to the
// ring, and launches the poll loop. On error the already-spawned
// replicas are closed.
func (s *Supervisor) Start(ctx context.Context) error {
	for i := 0; i < s.cfg.Replicas; i++ {
		id := ReplicaID(i)
		rep, err := s.spawn(ctx, i, id)
		if err != nil {
			_ = s.Close()
			return fmt.Errorf("fleet: spawn %s: %w", id, err)
		}
		s.mu.Lock()
		s.replicas[id] = &replicaState{replica: rep}
		s.order = append(s.order, id)
		s.mu.Unlock()
	}
	deadline := time.Now().Add(time.Duration(s.cfg.StartTimeoutMS) * time.Millisecond)
	for _, id := range s.Replicas() {
		if err := s.awaitHealthy(ctx, id, deadline); err != nil {
			_ = s.Close()
			return err
		}
		s.mu.Lock()
		s.replicas[id].inRing = true
		s.mu.Unlock()
		s.ring.Add(id)
	}
	s.mu.Lock()
	s.pollStarted = true
	s.mu.Unlock()
	go s.pollLoop()
	return nil
}

// awaitHealthy polls one replica until it answers 200 or the fleet's
// start deadline passes.
func (s *Supervisor) awaitHealthy(ctx context.Context, id string, deadline time.Time) error {
	url, _ := s.URLOf(id)
	interval := time.Duration(s.cfg.HealthPollMS) * time.Millisecond
	for {
		if s.probe(ctx, url) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: replica %s not healthy within %dms", id, s.cfg.StartTimeoutMS)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
}

// probe runs one /healthz check; any 200 means routable.
func (s *Supervisor) probe(ctx context.Context, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// pollLoop is the supervisor's health authority: consecutive failures
// evict a replica from the ring; a healthy answer re-admits it (unless
// it was deliberately retired).
func (s *Supervisor) pollLoop() {
	defer close(s.doneCh)
	interval := time.Duration(s.cfg.HealthPollMS) * time.Millisecond
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	ctx := context.Background()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
		}
		for _, id := range s.Replicas() {
			s.mu.Lock()
			st := s.replicas[id]
			// A retired replica that already left the ring needs no
			// probing; a retired one still IN the ring was killed
			// unannounced, and probing it is how the loop notices and
			// evicts the corpse.
			skip := st == nil || (st.retired && !st.inRing)
			var url string
			if st != nil {
				url = st.replica.URL()
			}
			s.mu.Unlock()
			if skip {
				continue
			}
			healthy := s.probe(ctx, url)
			s.mu.Lock()
			if healthy {
				st.fails = 0
				if !st.inRing && !st.retired {
					st.inRing = true
					s.mu.Unlock()
					s.ring.Add(id)
					continue
				}
			} else {
				st.fails++
				if st.inRing && st.fails >= s.cfg.FailAfter {
					st.inRing = false
					s.mu.Unlock()
					s.ring.Remove(id)
					continue
				}
			}
			s.mu.Unlock()
		}
	}
}

// Ring exposes the supervisor's hash ring (the router shares it).
func (s *Supervisor) Ring() *Ring { return s.ring }

// Router builds a router over this supervisor's ring and replica table.
func (s *Supervisor) Router(opts RouterOptions) *Router {
	return NewRouter(s.ring, s.URLOf, s.cfg, opts)
}

// Replicas lists managed replica IDs in spawn order (retired ones
// included — they still appear in metrics history).
func (s *Supervisor) Replicas() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// URLOf resolves a replica ID to its HTTP root.
func (s *Supervisor) URLOf(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.replicas[id]
	if !ok {
		return "", false
	}
	return st.replica.URL(), true
}

// DrainReplica retires one replica gracefully, in the order the fleet
// contract requires: ring removal first (no new traffic can route
// there), then the replica's own drain (admitted requests finish,
// listener closes). The replica stays managed but never re-admits.
func (s *Supervisor) DrainReplica(ctx context.Context, id string) error {
	s.mu.Lock()
	st, ok := s.replicas[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("fleet: unknown replica %q", id)
	}
	st.retired = true
	st.inRing = false
	s.mu.Unlock()
	s.ring.Remove(id)
	return st.replica.Drain(ctx)
}

// KillReplica stops a replica abruptly without touching the ring first
// — the failure the router's per-request failover and the poll loop
// exist to absorb. It still runs the replica's graceful drain (in-tree
// replicas never drop admitted requests; "abrupt" here means the
// control plane was not warned), so the PR 5 single-process guarantee
// holds while the fleet reroutes around the loss.
func (s *Supervisor) KillReplica(ctx context.Context, id string) error {
	s.mu.Lock()
	st, ok := s.replicas[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("fleet: unknown replica %q", id)
	}
	st.retired = true
	s.mu.Unlock()
	err := st.replica.Drain(ctx)
	return errors.Join(err, st.replica.Close())
}

// Close stops the poll loop and closes every replica (draining each
// with a short grace period). Idempotent.
func (s *Supervisor) Close() error {
	s.closeOnce.Do(func() {
		s.stopOnce.Do(func() { close(s.stopCh) })
		s.mu.Lock()
		started := s.pollStarted
		s.mu.Unlock()
		if started {
			select {
			case <-s.doneCh:
			case <-time.After(5 * time.Second):
			}
		}
		s.mu.Lock()
		ids := append([]string(nil), s.order...)
		s.mu.Unlock()
		sort.Strings(ids)
		var errs []error
		for _, id := range ids {
			s.mu.Lock()
			st := s.replicas[id]
			s.mu.Unlock()
			if st == nil {
				continue
			}
			s.ring.Remove(id)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = st.replica.Drain(ctx)
			cancel()
			if err := st.replica.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		s.closeErr = errors.Join(errs...)
	})
	return s.closeErr
}

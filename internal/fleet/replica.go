package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"nbhd/internal/serve"
)

// Replica is one supervised gateway: something with a routable URL that
// can be drained (finish admitted work, refuse new) and closed. The
// supervisor treats in-process and subprocess replicas identically.
type Replica interface {
	// ID names the replica on the ring and in metrics.
	ID() string
	// URL is the replica's HTTP root, e.g. "http://127.0.0.1:9101".
	URL() string
	// Drain stops the replica gracefully: in-flight requests finish, the
	// listener closes, and Drain returns when the replica is quiet (or
	// the context expires).
	Drain(ctx context.Context) error
	// Close releases the replica's resources; safe after Drain.
	Close() error
}

// localReplica runs a serve.Server in this process on a loopback
// listener — the shape tests and the fleet bench use, where replicas
// share one render cache and injected backends.
type localReplica struct {
	id      string
	srv     *serve.Server
	httpSrv *http.Server
	url     string

	closeOnce sync.Once
	closeErr  error
}

// NewLocalReplica boots srv on an ephemeral loopback port. The replica
// takes ownership: Close closes srv.
func NewLocalReplica(id string, srv *serve.Server) (Replica, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %s: %w", id, err)
	}
	r := &localReplica{
		id:      id,
		srv:     srv,
		httpSrv: &http.Server{Handler: srv.Handler()},
		url:     "http://" + ln.Addr().String(),
	}
	go func() { _ = r.httpSrv.Serve(ln) }()
	return r, nil
}

func (r *localReplica) ID() string  { return r.id }
func (r *localReplica) URL() string { return r.url }

// Drain follows the gateway's documented shutdown order: flip healthz,
// let admitted requests finish, then close the listener — the same
// sequence cmd/nbhdserve runs on SIGTERM.
func (r *localReplica) Drain(ctx context.Context) error {
	r.srv.Drain()
	return r.httpSrv.Shutdown(ctx)
}

func (r *localReplica) Close() error {
	r.closeOnce.Do(func() {
		_ = r.httpSrv.Close()
		r.closeErr = r.srv.Close()
	})
	return r.closeErr
}

// execReplica runs a gateway as a subprocess (production shape: one
// nbhdserve per replica). Drain sends SIGTERM and waits — nbhdserve's
// signal handler runs the same Drain/Shutdown/Close sequence the local
// replica calls directly.
type execReplica struct {
	id  string
	url string
	cmd *exec.Cmd

	waitOnce sync.Once
	waitErr  error
	done     chan struct{}
}

// NewExecReplica starts argv as a replica subprocess rooted at url.
// Placeholders have already been substituted by the spawner.
func NewExecReplica(id string, argv []string, url string) (Replica, error) {
	if len(argv) == 0 {
		return nil, fmt.Errorf("fleet: replica %s: empty exec argv", id)
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: replica %s: start %q: %w", id, argv[0], err)
	}
	r := &execReplica{id: id, url: url, cmd: cmd, done: make(chan struct{})}
	go func() {
		r.waitOnce.Do(func() { r.waitErr = cmd.Wait() })
		close(r.done)
	}()
	return r, nil
}

func (r *execReplica) ID() string  { return r.id }
func (r *execReplica) URL() string { return r.url }

func (r *execReplica) Drain(ctx context.Context) error {
	if err := r.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("fleet: replica %s: signal: %w", r.id, err)
	}
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: replica %s: drain: %w", r.id, ctx.Err())
	}
}

func (r *execReplica) Close() error {
	select {
	case <-r.done:
		return nil
	default:
	}
	_ = r.cmd.Process.Kill()
	select {
	case <-r.done:
	case <-time.After(5 * time.Second):
	}
	return nil
}

// ExecSpawner builds the SpawnFunc for subprocess replicas from the
// fleet config's Exec argv template: replica i listens on
// 127.0.0.1:BasePort+i, and {id}, {addr}, {port} substitute into every
// argv token.
func ExecSpawner(cfg Config) SpawnFunc {
	cfg = cfg.withDefaults()
	return func(ctx context.Context, idx int, id string) (Replica, error) {
		port := cfg.BasePort + idx
		addr := fmt.Sprintf("127.0.0.1:%d", port)
		argv := make([]string, len(cfg.Exec))
		for i, tok := range cfg.Exec {
			tok = strings.ReplaceAll(tok, "{id}", id)
			tok = strings.ReplaceAll(tok, "{addr}", addr)
			tok = strings.ReplaceAll(tok, "{port}", fmt.Sprintf("%d", port))
			argv[i] = tok
		}
		return NewExecReplica(id, argv, "http://"+addr)
	}
}

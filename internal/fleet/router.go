package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nbhd/internal/llmserve"
	"nbhd/internal/serve"
)

// Router is the fleet's front door: it computes each request's shard
// key with the same derivation the gateways use for their result
// caches, forwards the request to the ring owner, and walks the ring's
// successor order when the owner is unreachable. It rides the same
// admission/drain shell shape as a gateway: /healthz flips to 503 on
// Drain, /metricsz reports per-replica route counts, failovers, and the
// ring generation.
//
// Responses pass through unchanged apart from two tracing headers:
// X-Fleet-Replica names the serving replica, and X-Fleet-Failover
// carries the successor index (absent when the owner served). A
// replica's 503 + Retry-After shed propagates verbatim and is never
// retried on another member — shedding is the fleet telling the client
// to slow down, and bouncing the request to a sibling would turn
// admission control into load amplification.
//
// With Config.SpillFactor set above 1, the router additionally runs
// consistent hashing with bounded loads: a request whose owner already
// carries more than SpillFactor times the fleet-average in-flight count
// is served by the next ring successor under its bound (tagged
// X-Fleet-Spill). A Zipf-headed workload otherwise caps the whole fleet
// at the hot shard's ceiling; bounded spill trades a slice of the hot
// key's cache affinity for fleet-wide saturation.
type Router struct {
	ring    *Ring
	resolve func(id string) (string, bool)
	client  *http.Client

	quantized  map[string]bool
	failover   int
	retryAfter int
	maxBody    int64
	spill      float64

	start    time.Time
	draining atomic.Bool
	reqSeq   atomic.Int64

	mu        sync.Mutex
	forwarded map[string]int64
	fwdErrors map[string]int64
	inflight  map[string]int64
	requests  int64
	failovers int64
	spills    int64
	noReplica int64
}

// RouterOptions tune a router beyond its fleet config.
type RouterOptions struct {
	// QuantizedRoutes marks routes whose backends run int8 inference,
	// so the router's shard keys carry the same quantized bit the
	// gateways put in their cache keys. Spec-configured routes are
	// derived from the fleet config; entries here overlay injected
	// routes (tests, benches).
	QuantizedRoutes map[string]bool
	// Client issues the forwarded requests; nil builds a pooled client
	// (idle connections per replica, no per-request TCP churn).
	Client *http.Client
	// MaxBodyBytes bounds a buffered request body; zero defaults to the
	// gateway's image cap plus JSON scaffolding headroom.
	MaxBodyBytes int64
}

// NewRouter assembles a router over a ring and a replica-URL resolver
// (usually Supervisor.URLOf). The cfg supplies failover and Retry-After
// policy plus the spec-derived quantized route set.
func NewRouter(ring *Ring, resolve func(id string) (string, bool), cfg Config, opts RouterOptions) *Router {
	cfg = cfg.withDefaults()
	quant := cfg.QuantizedRoutes()
	for name, q := range opts.QuantizedRoutes {
		quant[name] = q
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Timeout: 120 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		imageCap := cfg.Gateway.MaxImageBytes
		if imageCap == 0 {
			imageCap = 8 << 20
		}
		maxBody = int64(imageCap)*2 + 1<<20
	}
	failover := cfg.FailoverRetries
	if failover < 0 {
		failover = 0
	}
	return &Router{
		ring:       ring,
		resolve:    resolve,
		client:     client,
		quantized:  quant,
		failover:   failover,
		retryAfter: cfg.RetryAfterSeconds,
		maxBody:    maxBody,
		spill:      cfg.SpillFactor,
		start:      time.Now(),
		forwarded:  make(map[string]int64),
		fwdErrors:  make(map[string]int64),
		inflight:   make(map[string]int64),
	}
}

// Handler returns the router's HTTP handler: the three data-plane
// routes plus its own health and metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", rt.handleClassify)
	mux.HandleFunc("/v1/neighborhood", rt.handleNeighborhood)
	mux.HandleFunc("/v1/nearest", rt.handleNearest)
	mux.HandleFunc("/healthz", rt.handleHealth)
	mux.HandleFunc("/metricsz", rt.handleMetrics)
	return mux
}

// Drain flips /healthz to 503 so upstream load balancers stop sending
// traffic; in-flight forwards finish normally, mirroring serve.Drain.
func (rt *Router) Drain() { rt.draining.Store(true) }

func (rt *Router) nextReqID() string {
	return fmt.Sprintf("flt-%06d", rt.reqSeq.Add(1))
}

// writeError emits the llmserve-shaped error body both services speak.
func writeError(w http.ResponseWriter, status int, typ, msg, reqID string) {
	var body llmserve.ErrorResponse
	body.Error.Message = msg
	body.Error.Type = typ
	body.Error.RequestID = reqID
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// write503 sheds at the router itself (no healthy replica, all
// candidates unreachable), advertising the configured Retry-After.
func (rt *Router) write503(w http.ResponseWriter, msg, reqID string) {
	if rt.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(rt.retryAfter))
	}
	writeError(w, http.StatusServiceUnavailable, "overloaded", msg, reqID)
}

func (rt *Router) handleClassify(w http.ResponseWriter, r *http.Request) {
	reqID := rt.nextReqID()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST", reqID)
		return
	}
	body, req, herr := readBody[serve.ClassifyRequest](r, rt.maxBody)
	if herr != "" {
		writeError(w, http.StatusBadRequest, "invalid_request_error", herr, reqID)
		return
	}
	key, err := serve.RequestShardKey(req, rt.quantized[req.Backend])
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error(), reqID)
		return
	}
	rt.forward(w, r, key, body, reqID)
}

func (rt *Router) handleNeighborhood(w http.ResponseWriter, r *http.Request) {
	reqID := rt.nextReqID()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST", reqID)
		return
	}
	body, req, herr := readBody[serve.NeighborhoodRequest](r, rt.maxBody)
	if herr != "" {
		writeError(w, http.StatusBadRequest, "invalid_request_error", herr, reqID)
		return
	}
	key, err := serve.NeighborhoodShardKey(req, rt.quantized[req.Backend])
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error(), reqID)
		return
	}
	rt.forward(w, r, key, body, reqID)
}

func (rt *Router) handleNearest(w http.ResponseWriter, r *http.Request) {
	reqID := rt.nextReqID()
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use GET", reqID)
		return
	}
	// Nearest queries touch no per-key gateway state (the spatial index
	// is identical on every replica), so the key only needs to spread
	// identical queries consistently; the raw query string does that.
	rt.forward(w, r, "nearest|"+r.URL.RawQuery, nil, reqID)
}

// readBody buffers and decodes a JSON request body, returning the raw
// bytes for re-sending downstream. The error string is empty on
// success.
func readBody[T any](r *http.Request, limit int64) ([]byte, *T, string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit))
	if err != nil {
		return nil, nil, "read body: " + err.Error()
	}
	var req T
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, nil, "empty or malformed JSON body: " + err.Error()
	}
	return body, &req, ""
}

// spillOrder applies consistent hashing with bounded loads to the
// candidate list: if the owner's in-flight count is at or above
// SpillFactor times the fleet-wide average, the first successor under
// its bound serves instead. The rotation keeps every candidate in the
// list (ring order preserved after the chosen head), so transport
// failover still walks the full successor sequence. Returns the
// possibly-reordered candidates and whether the head changed.
func (rt *Router) spillOrder(candidates []string) ([]string, bool) {
	if rt.spill <= 1 || len(candidates) < 2 {
		return candidates, false
	}
	members := rt.ring.Len()
	if members < 2 {
		return candidates, false
	}
	rt.mu.Lock()
	var total int64
	for _, n := range rt.inflight {
		total += n
	}
	// The +1 counts this request: each member may carry at most
	// ceil(spill * (total+1) / members) in-flight forwards.
	bound := int64(math.Ceil(rt.spill * float64(total+1) / float64(members)))
	choice := -1
	for i, id := range candidates {
		if rt.inflight[id] < bound {
			choice = i
			break
		}
	}
	if choice > 0 {
		rt.spills++
	}
	rt.mu.Unlock()
	if choice <= 0 {
		// Owner under bound, or every candidate saturated: keep ring order.
		return candidates, false
	}
	rotated := make([]string, 0, len(candidates))
	rotated = append(rotated, candidates[choice])
	rotated = append(rotated, candidates[:choice]...)
	rotated = append(rotated, candidates[choice+1:]...)
	return rotated, true
}

// forward sends the buffered request to the key's owner, walking the
// ring's successor order on transport failure. Whatever HTTP status the
// first reachable replica returns — 200, 4xx, or a 503 shed — passes
// through unchanged; only "cannot reach the replica at all" advances to
// the next candidate.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte, reqID string) {
	rt.mu.Lock()
	rt.requests++
	rt.mu.Unlock()
	candidates := rt.ring.Successors(key, rt.failover+1)
	if len(candidates) == 0 {
		rt.mu.Lock()
		rt.noReplica++
		rt.mu.Unlock()
		rt.write503(w, "no healthy replicas in the ring", reqID)
		return
	}
	candidates, spilled := rt.spillOrder(candidates)
	for i, id := range candidates {
		url, ok := rt.resolve(id)
		if !ok {
			continue
		}
		var payload io.Reader
		if body != nil {
			payload = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, url+r.URL.RequestURI(), payload)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "router_error", err.Error(), reqID)
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		rt.mu.Lock()
		rt.inflight[id]++
		rt.mu.Unlock()
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.mu.Lock()
			rt.inflight[id]--
			rt.mu.Unlock()
			if r.Context().Err() != nil {
				// The client hung up; nobody is listening for an answer.
				return
			}
			// Replica down or draining past its listener: count it and
			// fail over to the next ring successor. The supervisor's
			// health poll will take it out of the ring shortly; until
			// then this per-request path covers the gap.
			rt.mu.Lock()
			rt.fwdErrors[id]++
			if i < len(candidates)-1 {
				rt.failovers++
			}
			rt.mu.Unlock()
			continue
		}
		rt.relay(w, resp, id, i, spilled)
		rt.mu.Lock()
		rt.inflight[id]--
		rt.mu.Unlock()
		return
	}
	rt.write503(w, fmt.Sprintf("all %d candidate replicas unreachable", len(candidates)), reqID)
}

// relay copies one replica response to the client, tagging it with the
// fleet tracing headers.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, id string, attempt int, spilled bool) {
	defer func() { _ = resp.Body.Close() }()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Fleet-Replica", id)
	if attempt > 0 {
		w.Header().Set("X-Fleet-Failover", strconv.Itoa(attempt))
	}
	if spilled && attempt == 0 {
		w.Header().Set("X-Fleet-Spill", "1")
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	rt.mu.Lock()
	rt.forwarded[id]++
	rt.mu.Unlock()
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:         "ok",
		Draining:       rt.draining.Load(),
		RingReplicas:   rt.ring.Len(),
		RingGeneration: rt.ring.Generation(),
		UptimeSeconds:  time.Since(rt.start).Seconds(),
	}
	status := http.StatusOK
	switch {
	case h.Draining:
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	case h.RingReplicas == 0:
		h.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(rt.Metrics())
}

// Metrics snapshots the router's counters — what /metricsz serves.
func (rt *Router) Metrics() Metrics {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m := Metrics{
		UptimeSeconds:  time.Since(rt.start).Seconds(),
		Draining:       rt.draining.Load(),
		RingGeneration: rt.ring.Generation(),
		RingReplicas:   rt.ring.Members(),
		Requests:       rt.requests,
		Failovers:      rt.failovers,
		LoadSpills:     rt.spills,
		NoReplica503:   rt.noReplica,
		Forwarded:      make(map[string]int64, len(rt.forwarded)),
		ForwardErrors:  make(map[string]int64, len(rt.fwdErrors)),
	}
	for id, n := range rt.forwarded {
		m.Forwarded[id] = n
	}
	for id, n := range rt.fwdErrors {
		m.ForwardErrors[id] = n
	}
	return m
}

// Health is the router's /healthz body.
type Health struct {
	// Status is "ok", "draining", or "degraded" (empty ring).
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	// RingReplicas counts current ring members; RingGeneration counts
	// membership changes since boot.
	RingReplicas   int     `json:"ring_replicas"`
	RingGeneration uint64  `json:"ring_generation"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// Metrics is the router's /metricsz body.
type Metrics struct {
	UptimeSeconds  float64  `json:"uptime_seconds"`
	Draining       bool     `json:"draining"`
	RingGeneration uint64   `json:"ring_generation"`
	RingReplicas   []string `json:"ring_replicas"`
	// Requests counts everything routed; Forwarded breaks successful
	// relays down by serving replica, ForwardErrors counts unreachable
	// forward attempts per replica.
	Requests      int64            `json:"requests"`
	Forwarded     map[string]int64 `json:"forwarded"`
	ForwardErrors map[string]int64 `json:"forward_errors"`
	// Failovers counts requests that advanced past at least one dead
	// candidate; LoadSpills counts requests rerouted off an over-bound
	// owner by SpillFactor; NoReplica503 counts router-origin sheds.
	Failovers    int64 `json:"failovers"`
	LoadSpills   int64 `json:"load_spills"`
	NoReplica503 int64 `json:"no_replica_503"`
}

package fleet_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nbhd/internal/fleet"
)

// fakeReplica is a supervised stand-in: an httptest server whose
// /healthz answer flips atomically, plus hooks that record what the
// supervisor did and when.
type fakeReplica struct {
	id      string
	ts      *httptest.Server
	healthy atomic.Bool
	onDrain func(id string)

	mu      sync.Mutex
	drained bool
	closed  bool
}

func newFakeReplica(id string) *fakeReplica {
	f := &fakeReplica{id: id}
	f.healthy.Store(true)
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && f.healthy.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	return f
}

func (f *fakeReplica) ID() string  { return f.id }
func (f *fakeReplica) URL() string { return f.ts.URL }

func (f *fakeReplica) Drain(ctx context.Context) error {
	if f.onDrain != nil {
		f.onDrain(f.id)
	}
	f.mu.Lock()
	f.drained = true
	f.mu.Unlock()
	return nil
}

func (f *fakeReplica) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		f.closed = true
		f.ts.Close()
	}
	return nil
}

// eventually polls cond for up to 3 seconds — generous against the
// 20ms poll interval these tests configure.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition never held: %s", what)
}

// startFakeFleet boots a supervisor over n fake replicas with a fast
// poll loop.
func startFakeFleet(t *testing.T, n int) (*fleet.Supervisor, []*fakeReplica) {
	t.Helper()
	fakes := make([]*fakeReplica, n)
	cfg := fleet.Config{
		Replicas:       n,
		HealthPollMS:   20,
		FailAfter:      2,
		StartTimeoutMS: 5000,
	}
	sup := fleet.NewSupervisor(cfg, func(ctx context.Context, idx int, id string) (fleet.Replica, error) {
		fakes[idx] = newFakeReplica(id)
		return fakes[idx], nil
	})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = sup.Close() })
	return sup, fakes
}

// TestSupervisorEvictsAndReadmits: consecutive failed polls remove a
// replica from the ring (with a generation bump the router's /metricsz
// exposes); a healthy poll puts it back.
func TestSupervisorEvictsAndReadmits(t *testing.T) {
	sup, fakes := startFakeFleet(t, 3)
	ring := sup.Ring()
	if ring.Len() != 3 {
		t.Fatalf("ring has %d members after start, want 3", ring.Len())
	}
	genAfterStart := ring.Generation()
	if genAfterStart != 3 {
		t.Fatalf("ring generation %d after 3 admissions", genAfterStart)
	}

	victim := fakes[1]
	victim.healthy.Store(false)
	eventually(t, "unhealthy replica evicted from ring", func() bool {
		return !ring.Has(victim.id)
	})
	if g := ring.Generation(); g != genAfterStart+1 {
		t.Fatalf("generation %d after eviction, want %d", g, genAfterStart+1)
	}
	if ring.Len() != 2 {
		t.Fatalf("ring has %d members after eviction, want 2", ring.Len())
	}

	victim.healthy.Store(true)
	eventually(t, "recovered replica re-admitted", func() bool {
		return ring.Has(victim.id)
	})
	if g := ring.Generation(); g != genAfterStart+2 {
		t.Fatalf("generation %d after re-admission, want %d", g, genAfterStart+2)
	}
}

// TestSupervisorSingleBlipForgiven: FailAfter=2 means one failed poll
// does not evict — the router's per-request failover covers one blip
// without churning the ring.
func TestSupervisorSingleBlipForgiven(t *testing.T) {
	sup, fakes := startFakeFleet(t, 2)
	ring := sup.Ring()
	gen := ring.Generation()

	// Fail exactly one poll window, then recover: flip unhealthy and
	// back within one interval.
	fakes[0].healthy.Store(false)
	time.Sleep(25 * time.Millisecond)
	fakes[0].healthy.Store(true)
	time.Sleep(200 * time.Millisecond)
	if !ring.Has(fakes[0].id) {
		t.Fatal("one blip evicted the replica; FailAfter=2 should forgive it")
	}
	// The ring may legitimately have churned if the blip spanned two
	// polls; what must not happen is a lasting eviction.
	if ring.Len() != 2 {
		t.Fatalf("ring has %d members, want 2 (generation %d -> %d)", ring.Len(), gen, ring.Generation())
	}
}

// TestSupervisorDrainOrdering is the drain contract: when DrainReplica
// invokes the replica's own Drain, the replica must ALREADY be out of
// the ring, so no new request can route to a dying member.
func TestSupervisorDrainOrdering(t *testing.T) {
	sup, fakes := startFakeFleet(t, 3)
	ring := sup.Ring()

	id := fakes[2].id
	inRingAtDrain := true
	fakes[2].onDrain = func(id string) { inRingAtDrain = ring.Has(id) }
	if err := sup.DrainReplica(context.Background(), id); err != nil {
		t.Fatalf("DrainReplica: %v", err)
	}
	if inRingAtDrain {
		t.Fatal("replica was still in the ring when its Drain ran; ring removal must come first")
	}
	fakes[2].mu.Lock()
	drained := fakes[2].drained
	fakes[2].mu.Unlock()
	if !drained {
		t.Fatal("DrainReplica never called the replica's Drain")
	}

	// A retired replica stays out even though its /healthz is green —
	// the poll loop must not resurrect a deliberate drain.
	time.Sleep(150 * time.Millisecond)
	if ring.Has(id) {
		t.Fatal("poll loop re-admitted a deliberately drained replica")
	}
	if _, ok := sup.URLOf(id); !ok {
		t.Fatal("drained replica vanished from the replica table; metrics history needs it")
	}
}

// TestSupervisorKillLeavesRingToThePollLoop: KillReplica is the
// unannounced failure — it must NOT touch the ring synchronously
// (that's the router's failover + the poll loop's job), and the poll
// loop must evict the corpse shortly after.
func TestSupervisorKillLeavesRingToThePollLoop(t *testing.T) {
	sup, fakes := startFakeFleet(t, 3)
	ring := sup.Ring()

	id := fakes[0].id
	if err := sup.KillReplica(context.Background(), id); err != nil {
		t.Fatalf("KillReplica: %v", err)
	}
	// Immediately after the kill the ring may still list the corpse —
	// that window is exactly what per-request failover absorbs. The
	// poll loop then notices and evicts.
	eventually(t, "poll loop evicted the killed replica", func() bool {
		return !ring.Has(id)
	})
	fakes[0].mu.Lock()
	closed := fakes[0].closed
	fakes[0].mu.Unlock()
	if !closed {
		t.Fatal("KillReplica did not close the replica")
	}
}

// TestSupervisorStartFailure: a spawn error closes the already-spawned
// replicas and reports which replica failed.
func TestSupervisorStartFailure(t *testing.T) {
	var spawned []*fakeReplica
	cfg := fleet.Config{Replicas: 3, HealthPollMS: 20, StartTimeoutMS: 2000}
	sup := fleet.NewSupervisor(cfg, func(ctx context.Context, idx int, id string) (fleet.Replica, error) {
		if idx == 2 {
			return nil, context.DeadlineExceeded
		}
		f := newFakeReplica(id)
		spawned = append(spawned, f)
		return f, nil
	})
	if err := sup.Start(context.Background()); err == nil {
		t.Fatal("Start succeeded despite a failing spawn")
	}
	for _, f := range spawned {
		f.mu.Lock()
		closed := f.closed
		f.mu.Unlock()
		if !closed {
			t.Fatalf("replica %s leaked after failed Start", f.id)
		}
	}
}

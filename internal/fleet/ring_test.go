package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real shard keys, not random strings.
		keys[i] = fmt.Sprintf("cnn|f32|SL,SW,SR,MR,PL,AP|en|par|0|0|0|idx:%d", i)
	}
	return keys
}

func owners(t *testing.T, r *Ring, keys []string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		id, ok := r.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q): empty ring", k)
		}
		out[k] = id
	}
	return out
}

// TestRingDistribution: with the default virtual-node count, 10k keys
// spread across 4 replicas within ±15% of uniform — the property that
// keeps every replica's coalescer and LRU equally loaded.
func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(ReplicaID(i))
	}
	keys := ringKeys(10000)
	counts := make(map[string]int)
	for _, k := range keys {
		id, ok := r.Owner(k)
		if !ok {
			t.Fatal("empty ring")
		}
		counts[id]++
	}
	if len(counts) != 4 {
		t.Fatalf("keys landed on %d replicas, want 4: %v", len(counts), counts)
	}
	uniform := float64(len(keys)) / 4
	for id, n := range counts {
		dev := (float64(n) - uniform) / uniform
		if dev < -0.15 || dev > 0.15 {
			t.Errorf("replica %s owns %d keys, %.1f%% off uniform (limit ±15%%); all: %v",
				id, n, 100*dev, counts)
		}
	}
}

// TestRingMinimalMovementAdd: growing 4 → 5 replicas remaps about 1/5
// of the keys, and every remapped key lands on the new replica —
// consistent hashing's defining property (a modulo shard would remap
// ~80% here).
func TestRingMinimalMovementAdd(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(ReplicaID(i))
	}
	keys := ringKeys(10000)
	before := owners(t, r, keys)
	r.Add(ReplicaID(4))
	after := owners(t, r, keys)

	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != ReplicaID(4) {
				t.Fatalf("key %q moved %s -> %s, but only the new replica may gain keys",
					k, before[k], after[k])
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("add moved %.1f%% of keys; want ~20%% (1/N), outside [10%%, 30%%]", 100*frac)
	}
}

// TestRingMinimalMovementRemove: removing a replica remaps exactly its
// own keys; every other key keeps its owner bit-for-bit.
func TestRingMinimalMovementRemove(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(ReplicaID(i))
	}
	keys := ringKeys(10000)
	before := owners(t, r, keys)
	victim := ReplicaID(2)
	r.Remove(victim)
	after := owners(t, r, keys)

	for _, k := range keys {
		switch {
		case before[k] == victim:
			if after[k] == victim {
				t.Fatalf("key %q still owned by removed replica", k)
			}
		case before[k] != after[k]:
			t.Fatalf("key %q moved %s -> %s though its owner was not removed",
				k, before[k], after[k])
		}
	}
}

// TestRingFailoverMatchesRemoval: a key's first successor is exactly
// where the key lands if the owner is removed — so router failover and
// supervisor eviction agree on placement and the successor's cache is
// already warm when the eviction happens.
func TestRingFailoverMatchesRemoval(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(ReplicaID(i))
	}
	keys := ringKeys(500)
	succ := make(map[string]string, len(keys))
	var victim = ReplicaID(1)
	for _, k := range keys {
		cands := r.Successors(k, 2)
		if cands[0] == victim {
			succ[k] = cands[1]
		}
	}
	r.Remove(victim)
	for k, want := range succ {
		got, _ := r.Owner(k)
		if got != want {
			t.Fatalf("key %q: failover successor %s but post-removal owner %s", k, want, got)
		}
	}
}

func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring reported an owner")
	}
	if s := r.Successors("k", 3); s != nil {
		t.Fatalf("empty ring returned successors %v", s)
	}
	for i := 0; i < 3; i++ {
		r.Add(ReplicaID(i))
	}
	s := r.Successors("some-key", 5)
	if len(s) != 3 {
		t.Fatalf("got %d successors, want all 3 members", len(s))
	}
	seen := map[string]bool{}
	for _, id := range s {
		if seen[id] {
			t.Fatalf("duplicate successor %s in %v", id, s)
		}
		seen[id] = true
	}
	if owner, _ := r.Owner("some-key"); owner != s[0] {
		t.Fatalf("Successors[0] = %s, Owner = %s", s[0], owner)
	}
}

func TestRingGenerationAndIdempotence(t *testing.T) {
	r := NewRing(0)
	if g := r.Generation(); g != 0 {
		t.Fatalf("fresh ring generation %d", g)
	}
	r.Add("a")
	r.Add("a") // no-op
	if g := r.Generation(); g != 1 {
		t.Fatalf("generation %d after one effective add", g)
	}
	r.Remove("b") // no-op
	r.Remove("a")
	if g := r.Generation(); g != 2 {
		t.Fatalf("generation %d after add+remove", g)
	}
	if r.Len() != 0 {
		t.Fatalf("ring not empty after removal: %v", r.Members())
	}
}

package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// defaultVirtualNodes is how many ring points each replica contributes
// when the config does not say otherwise. At 256 points per replica the
// per-replica share of a large key population lands within a few
// percent of uniform (see TestRingDistribution), which keeps every
// replica's coalescer and LRU equally warm.
const defaultVirtualNodes = 256

// Ring is a consistent-hash ring over replica IDs: every member
// contributes a fixed number of virtual points, and a key is owned by
// the member whose point follows the key's hash clockwise. Adding or
// removing a member moves only the keys adjacent to that member's
// points — about 1/N of the key space — so a replica failure reshuffles
// almost nothing and every surviving replica's cache stays hot.
//
// Membership is health: the supervisor adds a replica when it passes
// health checks and removes it when it fails them or starts draining,
// so Owner and Successors only ever name replicas believed routable.
// All methods are safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	member map[string]bool
	gen    uint64
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing builds an empty ring; vnodes <= 0 takes the default.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, member: make(map[string]bool)}
}

// hashKey positions a shard key (or a virtual node label) on the ring:
// FNV-1a for the byte walk, then a 64-bit avalanche finalizer. The
// finalizer matters: ring inputs are near-identical strings with
// sequential suffixes ("replica-0#1", "idx:41"), and raw FNV-1a maps
// those to correlated positions — enough to skew a 4-replica ring 60%
// off uniform. Mixing restores the spread TestRingDistribution pins.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer: every input bit flips each
// output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add admits a replica to the ring (a no-op when already present) and
// bumps the generation.
func (r *Ring) Add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[id] {
		return
	}
	r.member[id] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", id, v)), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.gen++
}

// Remove takes a replica out of the ring (a no-op when absent) and
// bumps the generation. Only keys owned by the removed replica change
// owners; everything else keeps its placement.
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[id] {
		return
	}
	delete(r.member, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.gen++
}

// Has reports current membership.
func (r *Ring) Has(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.member[id]
}

// Members returns the current replica IDs, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for id := range r.member {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}

// Generation counts membership changes; the router exposes it so
// operators (and the failover tests) can watch the ring react to
// replica health.
func (r *Ring) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Owner returns the replica that owns a shard key; ok is false on an
// empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	succ := r.Successors(key, 1)
	if len(succ) == 0 {
		return "", false
	}
	return succ[0], true
}

// Successors returns up to n distinct replicas in ring order starting
// at the key's owner — the failover sequence: when the owner is down,
// the next member in ring order takes the key, which is exactly where
// the key would have lived had the owner never existed (so a later
// Remove of the dead owner does not move the key again).
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

package fleet

import (
	"context"
	"time"

	"nbhd/internal/backend"
)

// WithServiceFloor wraps a backend with a minimum per-Classify service
// time, modeling a remote model server (a GPU pool, a hosted VLM API)
// whose round-trip latency — not this host's CPU — bounds a replica's
// dispatch throughput. The fleet loadgen runs its scaling passes on
// floored backends because that is the regime sharding is for: each
// gateway replica holds a bounded dispatch budget against its model
// replica, so aggregate throughput grows with the replica count even
// when every gateway shares one CPU (see docs/FLEET.md for the CPU
// budget caveats). Answers pass through untouched, so the failover
// bit-identity checks see the inner backend's deterministic output.
func WithServiceFloor(b backend.Backend, floor time.Duration) backend.Backend {
	if floor <= 0 {
		return b
	}
	return &floorBackend{inner: b, floor: floor}
}

type floorBackend struct {
	inner backend.Backend
	floor time.Duration
}

func (f *floorBackend) Name() string { return f.inner.Name() }

func (f *floorBackend) Capabilities() backend.Capabilities { return f.inner.Capabilities() }

func (f *floorBackend) Classify(ctx context.Context, req backend.BatchRequest) (backend.BatchResult, error) {
	start := time.Now()
	res, err := f.inner.Classify(ctx, req)
	if err != nil {
		return res, err
	}
	if remaining := f.floor - time.Since(start); remaining > 0 {
		select {
		case <-ctx.Done():
			return backend.BatchResult{}, ctx.Err()
		case <-time.After(remaining):
		}
	}
	return res, nil
}

// Package fleet is the multi-replica serving tier above internal/serve:
// a consistent-hash router that shards requests across N gateway
// replicas, and a supervisor that spawns, health-polls, drains, and
// re-admits those replicas from one JSON fleet config.
//
// Sharding is by serve.ShardKey — the exact key scheme the gateway's
// own result cache uses — so shard affinity equals cache affinity:
// every replica's coalescer and LRU stay hot on their own key range,
// and aggregate throughput scales with the replica count instead of
// re-deriving one process's working set N times. The router forwards
// /v1/classify, /v1/nearest, and /v1/neighborhood to the owning
// replica, fails over along the ring's successor order when a replica
// is unreachable, and propagates a replica's 503 + Retry-After sheds
// unchanged (shedding is backpressure, not failure; retrying it
// elsewhere would defeat admission control). Replica responses are
// bit-identical whichever member serves them — every replica runs the
// same deterministic backends over the same corpus — so failover is
// invisible to clients beyond the X-Fleet-* tracing headers.
//
// The supervisor owns the drain lifecycle, extending the single-process
// guarantee of internal/serve fleet-wide: a draining replica leaves the
// ring before it receives SIGTERM (or its in-process Drain), so no new
// traffic routes to it while its admitted requests finish; a replica
// that fails health polls is removed and re-admitted when it recovers.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"

	"nbhd/internal/serve"
)

// Config is the fleet's JSON-loadable configuration: one gateway config
// stamped out N times behind the router. Zero values take production
// defaults, mirroring serve.Config.
type Config struct {
	// Replicas is how many gateway replicas the supervisor runs.
	// Zero defaults to 2.
	Replicas int `json:"replicas,omitempty"`
	// Gateway is the per-replica gateway configuration; every replica
	// serves the same backends so any member can serve any key.
	Gateway serve.Config `json:"gateway"`
	// VirtualNodes is each replica's point count on the hash ring.
	// Zero defaults to 256.
	VirtualNodes int `json:"virtual_nodes,omitempty"`
	// HealthPollMS is the supervisor's /healthz poll interval in
	// milliseconds. Zero defaults to 250.
	HealthPollMS int `json:"health_poll_ms,omitempty"`
	// FailAfter is how many consecutive failed polls remove a replica
	// from the ring. Zero defaults to 2 (one blip is forgiven; the
	// router's per-request failover covers the gap).
	FailAfter int `json:"fail_after,omitempty"`
	// FailoverRetries is how many ring successors the router tries
	// after the owner fails. Zero defaults to 2; negative disables
	// failover (owner or bust — what the ring tests use).
	FailoverRetries int `json:"failover_retries,omitempty"`
	// SpillFactor enables consistent hashing with bounded loads: when
	// the owner's router-side in-flight count exceeds SpillFactor times
	// the fleet-wide average, the request is served by the next ring
	// successor under its bound instead. Affinity is untouched at or
	// below fair load — spilling starts only where a hot shard would
	// otherwise cap fleet throughput at its own ceiling. Values must
	// exceed 1 (1.25 is the classic choice); zero or less disables
	// spilling (strict affinity, the default).
	SpillFactor float64 `json:"spill_factor,omitempty"`
	// RetryAfterSeconds is advertised on router-origin 503s (no healthy
	// replica, every candidate unreachable). Zero defaults to 1;
	// negative omits the header. Replica-origin 503s pass through with
	// whatever Retry-After the replica set.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// StartTimeoutMS bounds how long Start waits for every replica's
	// first healthy poll. Zero defaults to 120000 (supervised backends
	// may train at boot).
	StartTimeoutMS int `json:"start_timeout_ms,omitempty"`
	// Exec, when set, runs each replica as a subprocess: an argv whose
	// tokens may contain the placeholders {id}, {addr}, and {port}
	// (e.g. ["./nbhdserve", "-addr", "{addr}", "-config", "gw.json"]).
	// Empty means the caller supplies in-process replicas.
	Exec []string `json:"exec,omitempty"`
	// BasePort is the first listen port for exec replicas (replica i
	// gets BasePort+i on 127.0.0.1). Zero defaults to 9100.
	BasePort int `json:"base_port,omitempty"`
}

// ParseConfig decodes a JSON fleet config, rejecting unknown fields so
// typos fail at boot, matching serve.ParseConfig.
func ParseConfig(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("fleet: parse config: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("fleet: parse config: trailing data after JSON object")
	}
	return cfg, nil
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.VirtualNodes == 0 {
		c.VirtualNodes = defaultVirtualNodes
	}
	if c.HealthPollMS == 0 {
		c.HealthPollMS = 250
	}
	if c.FailAfter == 0 {
		c.FailAfter = 2
	}
	if c.FailoverRetries == 0 {
		c.FailoverRetries = 2
	}
	if c.RetryAfterSeconds == 0 {
		c.RetryAfterSeconds = 1
	}
	if c.StartTimeoutMS == 0 {
		c.StartTimeoutMS = 120000
	}
	if c.BasePort == 0 {
		c.BasePort = 9100
	}
	return c
}

// QuantizedRoutes derives each configured route's numeric path from the
// gateway's backend specs — the router's side of the shard key's
// quantized bit. Injected (non-spec) routes can be overlaid through
// RouterOptions.
func (c Config) QuantizedRoutes() map[string]bool {
	out := make(map[string]bool, len(c.Gateway.Backends))
	for name, spec := range c.Gateway.Backends {
		out[name] = spec.Quantized
	}
	return out
}

package fleet

import (
	"strings"
	"testing"

	"nbhd/internal/backend"
	"nbhd/internal/serve"
)

func TestParseConfigRejectsUnknownFields(t *testing.T) {
	_, err := ParseConfig([]byte(`{"replicas": 2, "repilcas": 4}`))
	if err == nil || !strings.Contains(err.Error(), "repilcas") {
		t.Fatalf("unknown field accepted, err = %v", err)
	}
	_, err = ParseConfig([]byte(`{"replicas": 2} trailing`))
	if err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{}`))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	d := cfg.withDefaults()
	if d.Replicas != 2 || d.VirtualNodes != defaultVirtualNodes ||
		d.HealthPollMS != 250 || d.FailAfter != 2 || d.FailoverRetries != 2 ||
		d.RetryAfterSeconds != 1 || d.StartTimeoutMS != 120000 || d.BasePort != 9100 {
		t.Fatalf("defaults = %+v", d)
	}
	// Spill stays off unless asked for — strict affinity is the default
	// contract.
	if d.SpillFactor != 0 {
		t.Fatalf("SpillFactor defaulted on: %v", d.SpillFactor)
	}
	// Explicit values survive.
	e := Config{Replicas: 4, VirtualNodes: 64, FailoverRetries: -1, SpillFactor: 1.25}.withDefaults()
	if e.Replicas != 4 || e.VirtualNodes != 64 || e.FailoverRetries != -1 || e.SpillFactor != 1.25 {
		t.Fatalf("explicit values overwritten: %+v", e)
	}
}

// TestQuantizedRoutes: the shard key's numeric-path bit derives from
// the gateway's backend specs, so an int8 route and its f32 twin can
// never alias a cache entry across the fleet.
func TestQuantizedRoutes(t *testing.T) {
	cfg := Config{Gateway: serve.Config{Backends: map[string]backend.Spec{
		"cnn":    {Kind: "cnn"},
		"cnn-q8": {Kind: "cnn", Quantized: true},
	}}}
	q := cfg.QuantizedRoutes()
	if q["cnn"] || !q["cnn-q8"] {
		t.Fatalf("QuantizedRoutes = %v", q)
	}
}

// Black-box tests for the fleet router: every assertion goes through
// the wire against real serve.Server replicas, mirroring the gateway's
// own blackbox suite. The load-bearing property is bit-identity — a
// key's response must be byte-equal (modulo request IDs and cache
// telemetry) whether its ring owner serves it or a failover successor
// does — because that is what makes replica loss invisible to clients.
package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"nbhd/internal/backend"
	"nbhd/internal/dataset"
	"nbhd/internal/fleet"
	"nbhd/internal/serve"
)

// fakeBackend answers deterministically from the frame ID and indicator
// position alone, so identical requests must produce identical answers
// on every replica — the ground truth the failover tests compare
// against.
type fakeBackend struct {
	name  string
	delay time.Duration

	mu      sync.Mutex
	batches int
}

func (f *fakeBackend) Name() string                       { return f.name }
func (f *fakeBackend) Capabilities() backend.Capabilities { return backend.Capabilities{} }

func fakeAnswer(id string, k int) bool { return (len(id)+k)%2 == 0 }

func (f *fakeBackend) Classify(ctx context.Context, req backend.BatchRequest) (backend.BatchResult, error) {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return backend.BatchResult{}, ctx.Err()
		}
	}
	f.mu.Lock()
	f.batches++
	f.mu.Unlock()
	answers := make([][]bool, len(req.Items))
	for i, it := range req.Items {
		ans := make([]bool, len(req.Options.Indicators))
		for k := range req.Options.Indicators {
			ans[k] = fakeAnswer(it.ID, k)
		}
		answers[i] = ans
	}
	return backend.BatchResult{Answers: answers}, nil
}

// testFleet is a supervised in-process fleet behind an httptest router.
type testFleet struct {
	sup    *fleet.Supervisor
	router *fleet.Router
	ts     *httptest.Server
	cache  *dataset.RenderCache
}

// newTestFleet boots n local replicas over one shared render cache,
// each with its own deterministic fake backend, and mounts a router in
// front. The huge default health-poll interval keeps the supervisor's
// background eviction out of the way so tests exercise the router's
// per-request failover in isolation.
func newTestFleet(t *testing.T, n int, gw serve.Config, pollMS int, delay time.Duration) *testFleet {
	return newTestFleetCfg(t, fleet.Config{
		Replicas:     n,
		Gateway:      gw,
		HealthPollMS: pollMS,
	}, delay)
}

// newTestFleetCfg is newTestFleet with the whole fleet config exposed
// (spill factor, failover policy, ...).
func newTestFleetCfg(t *testing.T, cfg fleet.Config, delay time.Duration) *testFleet {
	t.Helper()
	study, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: 8, Seed: 7})
	if err != nil {
		t.Fatalf("BuildStudy: %v", err)
	}
	cache := dataset.NewRenderCache(study)
	gw := cfg.Gateway
	spawn := func(ctx context.Context, idx int, id string) (fleet.Replica, error) {
		srv, err := serve.New(ctx, gw, serve.Options{
			Frames:   cache,
			Backends: map[string]backend.Backend{"fake": &fakeBackend{name: "fake", delay: delay}},
		})
		if err != nil {
			return nil, err
		}
		return fleet.NewLocalReplica(id, srv)
	}
	sup := fleet.NewSupervisor(cfg, spawn)
	if err := sup.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	router := sup.Router(fleet.RouterOptions{QuantizedRoutes: map[string]bool{"fake": false}})
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = sup.Close()
	})
	return &testFleet{sup: sup, router: router, ts: ts, cache: cache}
}

// classifyResult is the stable part of a classify response: everything
// except request IDs and cache/batch telemetry, which legitimately vary
// across replicas and repeat requests.
type classifyResult struct {
	Backend    string
	Frame      string
	Indicators []string
	Answers    []bool
}

// classifyFrame posts one coordinate-addressed classify through the
// router and returns the stable response, the serving replica, and the
// failover header ("" when the owner served).
func (tf *testFleet) classifyFrame(t *testing.T, idx int) (classifyResult, string, string) {
	t.Helper()
	body := fmt.Sprintf(`{"backend": "fake", "frame": {"index": %d}}`, idx)
	resp, err := http.Post(tf.ts.URL+"/v1/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/classify frame %d: %v", idx, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frame %d: status %d", idx, resp.StatusCode)
	}
	var cr serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("frame %d: decode: %v", idx, err)
	}
	replica := resp.Header.Get("X-Fleet-Replica")
	if replica == "" {
		t.Fatalf("frame %d: response missing X-Fleet-Replica", idx)
	}
	return classifyResult{
		Backend:    cr.Backend,
		Frame:      cr.Frame,
		Indicators: cr.Indicators,
		Answers:    cr.Answers,
	}, replica, resp.Header.Get("X-Fleet-Failover")
}

// TestFleetFailoverBitIdentical is the satellite-3 black-box check: a
// frame's response is identical whether served by its ring owner, by a
// failover successor after the owner dies unannounced, or by the
// post-eviction owner once the ring catches up.
func TestFleetFailoverBitIdentical(t *testing.T) {
	tf := newTestFleet(t, 3, serve.Config{CacheSize: -1}, 600000, 0)
	const frames = 24

	base := make([]classifyResult, frames)
	owner := make([]string, frames)
	for i := 0; i < frames; i++ {
		res, rep, fo := tf.classifyFrame(t, i)
		if fo != "" {
			t.Fatalf("frame %d: unexpected failover %q with all replicas healthy", i, fo)
		}
		base[i] = res
		owner[i] = rep
	}

	// Kill a replica that owns at least one frame, without warning the
	// ring — the router's per-request failover has to absorb it.
	victim := owner[0]
	if err := tf.sup.KillReplica(context.Background(), victim); err != nil {
		t.Fatalf("KillReplica(%s): %v", victim, err)
	}

	for i := 0; i < frames; i++ {
		res, rep, fo := tf.classifyFrame(t, i)
		if !reflect.DeepEqual(res, base[i]) {
			t.Fatalf("frame %d: post-kill response diverged:\n got %+v\nwant %+v", i, res, base[i])
		}
		if owner[i] == victim {
			if fo == "" {
				t.Fatalf("frame %d: owner %s is dead but no X-Fleet-Failover set (served by %s)", i, victim, rep)
			}
			if rep == victim {
				t.Fatalf("frame %d: served by dead replica %s", i, victim)
			}
		} else {
			if fo != "" {
				t.Fatalf("frame %d: owner %s is alive but failover %q fired", i, owner[i], fo)
			}
			if rep != owner[i] {
				t.Fatalf("frame %d: owner changed %s -> %s without a ring change", i, owner[i], rep)
			}
		}
	}

	// Once the ring evicts the victim (here: explicitly, standing in for
	// the supervisor's poll), the successor becomes the owner — same
	// bytes, no failover header, no per-request probe of the corpse.
	tf.sup.Ring().Remove(victim)
	for i := 0; i < frames; i++ {
		res, rep, fo := tf.classifyFrame(t, i)
		if !reflect.DeepEqual(res, base[i]) {
			t.Fatalf("frame %d: post-eviction response diverged:\n got %+v\nwant %+v", i, res, base[i])
		}
		if fo != "" {
			t.Fatalf("frame %d: failover %q after eviction; successor should own the key now", i, fo)
		}
		if rep == victim {
			t.Fatalf("frame %d: evicted replica %s still serving", i, victim)
		}
	}
	if m := tf.router.Metrics(); m.Failovers == 0 {
		t.Fatalf("router metrics recorded no failovers after a replica kill: %+v", m)
	}
}

// TestFleetShardAffinityIsCacheAffinity: the same key always routes to
// the same replica, so a repeat request hits that replica's LRU — the
// property the whole ring keying scheme exists to preserve.
func TestFleetShardAffinityIsCacheAffinity(t *testing.T) {
	tf := newTestFleet(t, 3, serve.Config{}, 600000, 0)
	for idx := 0; idx < 8; idx++ {
		body := fmt.Sprintf(`{"backend": "fake", "frame": {"index": %d}}`, idx)
		var reps [2]string
		var cached [2]bool
		for pass := 0; pass < 2; pass++ {
			resp, err := http.Post(tf.ts.URL+"/v1/classify", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			var cr serve.ClassifyResponse
			if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
				t.Fatalf("decode: %v", err)
			}
			_ = resp.Body.Close()
			reps[pass] = resp.Header.Get("X-Fleet-Replica")
			cached[pass] = cr.Cached
		}
		if reps[0] != reps[1] {
			t.Fatalf("frame %d routed to %s then %s; shard affinity broken", idx, reps[0], reps[1])
		}
		if cached[0] || !cached[1] {
			t.Fatalf("frame %d cache flags = %v, want [false true]: repeat must hit the owner's LRU", idx, cached)
		}
	}
}

// TestFleetShedPropagatesUnchanged: a replica's 503 + Retry-After is
// backpressure, not failure — the router must relay it verbatim and
// never bounce the request to a sibling replica.
func TestFleetShedPropagatesUnchanged(t *testing.T) {
	// One slot, one queue seat, no cache: concurrent same-key requests
	// guarantee sheds at the owning replica while the sibling sits idle.
	tf := newTestFleet(t, 2, serve.Config{
		MaxBatch:    1,
		MaxDispatch: 1,
		MaxQueue:    1,
		CacheSize:   -1,
	}, 600000, 300*time.Millisecond)

	const concurrent = 6
	body := `{"backend": "fake", "frame": {"index": 0}}`
	type result struct {
		status   int
		retry    string
		failover string
		replica  string
		errType  string
	}
	results := make([]result, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(tf.ts.URL+"/v1/classify", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer func() { _ = resp.Body.Close() }()
			res := result{
				status:   resp.StatusCode,
				retry:    resp.Header.Get("Retry-After"),
				failover: resp.Header.Get("X-Fleet-Failover"),
				replica:  resp.Header.Get("X-Fleet-Replica"),
			}
			if res.status != http.StatusOK {
				var eb struct {
					Error struct {
						Type string `json:"type"`
					} `json:"error"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&eb)
				res.errType = eb.Error.Type
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	var oks, sheds int
	var okReplica string
	for _, r := range results {
		switch r.status {
		case http.StatusOK:
			oks++
			okReplica = r.replica
		case http.StatusServiceUnavailable:
			sheds++
			if r.retry == "" {
				t.Errorf("shed lost its Retry-After header: %+v", r)
			}
			if r.failover != "" {
				t.Errorf("shed was retried on another replica (failover %q): sheds are backpressure, not failure", r.failover)
			}
			if r.errType != "overloaded" {
				t.Errorf("shed error type %q, want %q", r.errType, "overloaded")
			}
		default:
			t.Errorf("unexpected status %d: %+v", r.status, r)
		}
	}
	if oks == 0 || sheds == 0 {
		t.Fatalf("want a mix of 200s and 503 sheds, got %d OK / %d shed", oks, sheds)
	}
	for _, r := range results {
		if r.status == http.StatusServiceUnavailable && r.replica != okReplica {
			t.Errorf("shed came from %s but the key's owner is %s: same key must hit one replica", r.replica, okReplica)
		}
	}
}

// TestFleetEmptyRing503: with no ring members the router sheds at its
// own layer, llmserve-shaped, with a Retry-After.
func TestFleetEmptyRing503(t *testing.T) {
	router := fleet.NewRouter(fleet.NewRing(0),
		func(string) (string, bool) { return "", false },
		fleet.Config{}, fleet.RouterOptions{})
	ts := httptest.NewServer(router.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/classify", "application/json",
		strings.NewReader(`{"backend": "fake", "frame": {"index": 0}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("router-origin 503 missing Retry-After")
	}
	var eb struct {
		Error struct {
			Type      string `json:"type"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if eb.Error.Type != "overloaded" || eb.Error.RequestID == "" {
		t.Fatalf("error body = %+v, want overloaded with a request_id", eb.Error)
	}

	// /healthz reports the empty ring as degraded.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer func() { _ = hr.Body.Close() }()
	var h fleet.Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("empty-ring health = %d %q, want 503 degraded", hr.StatusCode, h.Status)
	}
}

// TestFleetSpatialRoutes: /v1/nearest and /v1/neighborhood route
// through the fleet and match a direct request to the serving replica
// (request IDs aside).
func TestFleetSpatialRoutes(t *testing.T) {
	tf := newTestFleet(t, 2, serve.Config{}, 600000, 0)
	frames := tf.cache.Study().Frames
	lat := frames[0].Scene.Point.Coordinate.Lat
	lng := frames[0].Scene.Point.Coordinate.Lng

	nearestURL := fmt.Sprintf("/v1/nearest?lat=%v&lng=%v&k=3", lat, lng)
	resp, err := http.Get(tf.ts.URL + nearestURL)
	if err != nil {
		t.Fatalf("GET nearest: %v", err)
	}
	replica := resp.Header.Get("X-Fleet-Replica")
	var viaFleet serve.NearestResponse
	if err := json.NewDecoder(resp.Body).Decode(&viaFleet); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(viaFleet.Results) != 3 || replica == "" {
		t.Fatalf("nearest via fleet: status %d, %d results, replica %q", resp.StatusCode, len(viaFleet.Results), replica)
	}
	url, ok := tf.sup.URLOf(replica)
	if !ok {
		t.Fatalf("URLOf(%s) unknown", replica)
	}
	direct, err := http.Get(url + nearestURL)
	if err != nil {
		t.Fatalf("GET nearest direct: %v", err)
	}
	var viaReplica serve.NearestResponse
	if err := json.NewDecoder(direct.Body).Decode(&viaReplica); err != nil {
		t.Fatal(err)
	}
	_ = direct.Body.Close()
	viaFleet.RequestID, viaReplica.RequestID = "", ""
	if !reflect.DeepEqual(viaFleet, viaReplica) {
		t.Fatalf("nearest differs via fleet vs direct:\n fleet  %+v\n direct %+v", viaFleet, viaReplica)
	}

	nb := fmt.Sprintf(`{"backend": "fake", "lat": %v, "lng": %v, "radius_feet": 2000}`, lat, lng)
	var reps [2]string
	var bodies [2]serve.NeighborhoodResponse
	for pass := 0; pass < 2; pass++ {
		resp, err := http.Post(tf.ts.URL+"/v1/neighborhood", "application/json", strings.NewReader(nb))
		if err != nil {
			t.Fatalf("POST neighborhood: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&bodies[pass]); err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(bodies[pass].Locations) == 0 {
			t.Fatalf("neighborhood pass %d: status %d, %d locations", pass, resp.StatusCode, len(bodies[pass].Locations))
		}
		reps[pass] = resp.Header.Get("X-Fleet-Replica")
	}
	if reps[0] != reps[1] || reps[0] == "" {
		t.Fatalf("same neighborhood key routed to %q then %q", reps[0], reps[1])
	}
	bodies[0].RequestID, bodies[1].RequestID = "", ""
	if !reflect.DeepEqual(bodies[0], bodies[1]) {
		t.Fatalf("repeat neighborhood diverged:\n first  %+v\n second %+v", bodies[0], bodies[1])
	}
}

// TestFleetRouterMetricsAndDrain: /metricsz accounts for every routed
// request by replica, and Drain flips /healthz for upstream balancers.
func TestFleetRouterMetricsAndDrain(t *testing.T) {
	tf := newTestFleet(t, 2, serve.Config{}, 600000, 0)
	const frames = 10
	for i := 0; i < frames; i++ {
		tf.classifyFrame(t, i)
	}
	resp, err := http.Get(tf.ts.URL + "/metricsz")
	if err != nil {
		t.Fatalf("GET /metricsz: %v", err)
	}
	var m fleet.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if m.Requests != frames {
		t.Fatalf("metrics requests = %d, want %d", m.Requests, frames)
	}
	var forwarded int64
	for _, n := range m.Forwarded {
		forwarded += n
	}
	if forwarded != frames {
		t.Fatalf("per-replica forwarded counts sum to %d, want %d: %v", forwarded, frames, m.Forwarded)
	}
	if len(m.RingReplicas) != 2 || m.RingGeneration != 2 {
		t.Fatalf("ring state = %v gen %d, want 2 members gen 2", m.RingReplicas, m.RingGeneration)
	}

	tf.router.Drain()
	hr, err := http.Get(tf.ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer func() { _ = hr.Body.Close() }()
	var h fleet.Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("post-drain health = %d %q, want 503 draining", hr.StatusCode, h.Status)
	}
}

// TestFleetBoundedLoadSpill: with SpillFactor set, a flood of one hot
// key overflows the owner's in-flight bound and the router serves the
// overflow from the ring successor (bit-identically); at idle the same
// key routes straight back to its owner with no spill marker.
func TestFleetBoundedLoadSpill(t *testing.T) {
	gw := serve.Config{MaxBatch: 1, MaxDispatch: 1, MaxQueue: 64, CacheSize: -1}
	tf := newTestFleetCfg(t, fleet.Config{
		Replicas:     2,
		Gateway:      gw,
		HealthPollMS: 3600000,
		SpillFactor:  1.25,
	}, 120*time.Millisecond)

	// At idle the owner serves, unspilled — affinity is untouched below
	// the bound.
	want, owner, _ := tf.classifyFrame(t, 0)
	for i := 0; i < 2; i++ {
		got, rep, _ := tf.classifyFrame(t, 0)
		if rep != owner {
			t.Fatalf("idle request %d served by %s, owner is %s", i, rep, owner)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("idle repeat diverged: %+v vs %+v", got, want)
		}
	}

	// Flood the one key. MaxBatch 1 + MaxDispatch 1 + a slow backend
	// queue requests at the owner, so router-side in-flight climbs past
	// the bound and later arrivals spill to the successor.
	const flood = 8
	type res struct {
		body    classifyResult
		replica string
		spill   string
		status  int
	}
	results := make([]res, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			body := `{"backend": "fake", "frame": {"index": 0}}`
			resp, err := http.Post(tf.ts.URL+"/v1/classify", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("flood %d: %v", slot, err)
				return
			}
			defer func() { _ = resp.Body.Close() }()
			r := res{
				replica: resp.Header.Get("X-Fleet-Replica"),
				spill:   resp.Header.Get("X-Fleet-Spill"),
				status:  resp.StatusCode,
			}
			var cr serve.ClassifyResponse
			if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
				t.Errorf("flood %d: decode: %v", slot, err)
				return
			}
			r.body = classifyResult{Backend: cr.Backend, Frame: cr.Frame, Indicators: cr.Indicators, Answers: cr.Answers}
			results[slot] = r
		}(i)
		time.Sleep(10 * time.Millisecond) // ramp so in-flight climbs monotonically
	}
	wg.Wait()

	served := map[string]int{}
	spilled := 0
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("flood %d: status %d", i, r.status)
		}
		if !reflect.DeepEqual(r.body, want) {
			t.Fatalf("flood %d (served by %s) diverged from the owner's answer", i, r.replica)
		}
		served[r.replica]++
		if r.spill != "" {
			if r.replica == owner {
				t.Fatalf("flood %d: spill marker on an owner-served response", i)
			}
			spilled++
		}
	}
	if len(served) < 2 {
		t.Fatalf("flood never spilled off the owner: %v", served)
	}
	if spilled == 0 {
		t.Fatal("no response carried X-Fleet-Spill")
	}
	if m := tf.router.Metrics(); m.LoadSpills == 0 {
		t.Fatalf("router metrics recorded no spills: %+v", m)
	}

	// Back at idle, the key snaps back to its owner.
	got, rep, _ := tf.classifyFrame(t, 0)
	if rep != owner || !reflect.DeepEqual(got, want) {
		t.Fatalf("post-flood request served by %s (owner %s)", rep, owner)
	}
}

package ensemble

import (
	"testing"
	"testing/quick"

	"nbhd/internal/dataset"
	"nbhd/internal/metrics"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

func TestVoteMajority(t *testing.T) {
	answers := [][]bool{
		{true, false, true},
		{true, true, false},
		{false, false, true},
	}
	got, err := Vote(answers)
	if err != nil {
		t.Fatalf("Vote: %v", err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("vote[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVoteEvenSplitIsAbsent(t *testing.T) {
	got, err := Vote([][]bool{{true}, {false}})
	if err != nil {
		t.Fatalf("Vote: %v", err)
	}
	if got[0] {
		t.Error("even split should predict absent")
	}
}

func TestVoteValidation(t *testing.T) {
	if _, err := Vote(nil); err == nil {
		t.Error("empty vote accepted")
	}
	if _, err := Vote([][]bool{{true}, {true, false}}); err == nil {
		t.Error("ragged vectors accepted")
	}
}

func TestVoteSingleModel(t *testing.T) {
	got, err := Vote([][]bool{{true, false}})
	if err != nil {
		t.Fatalf("Vote: %v", err)
	}
	if !got[0] || got[1] {
		t.Error("single-model vote should pass through")
	}
}

func reportWithAccuracy(t *testing.T, acc float64) *metrics.ClassReport {
	t.Helper()
	var r metrics.ClassReport
	// Build each class's confusion so accuracy == acc using 100 samples.
	right := int(acc * 100)
	for _, ind := range scene.Indicators() {
		for i := 0; i < right; i++ {
			if err := r.Add(ind, true, true); err != nil {
				t.Fatal(err)
			}
		}
		for i := right; i < 100; i++ {
			if err := r.Add(ind, true, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &r
}

func TestSelectTop(t *testing.T) {
	reports := map[vlm.ModelID]*metrics.ClassReport{
		vlm.ChatGPT4oMini: reportWithAccuracy(t, 0.84),
		vlm.Gemini15Pro:   reportWithAccuracy(t, 0.88),
		vlm.Claude37:      reportWithAccuracy(t, 0.86),
		vlm.Grok2:         reportWithAccuracy(t, 0.84),
	}
	top, err := SelectTop(reports, 3)
	if err != nil {
		t.Fatalf("SelectTop: %v", err)
	}
	if len(top) != 3 {
		t.Fatalf("top = %d entries", len(top))
	}
	if top[0].ID != vlm.Gemini15Pro {
		t.Errorf("best = %s, want Gemini", top[0].ID)
	}
	if top[1].ID != vlm.Claude37 {
		t.Errorf("second = %s, want Claude", top[1].ID)
	}
	// ChatGPT and Grok tie at 0.84; lexicographic order puts chatgpt
	// first.
	if top[2].ID != vlm.ChatGPT4oMini {
		t.Errorf("third = %s, want ChatGPT (tie-break)", top[2].ID)
	}
	// Oversized k clamps.
	all, err := SelectTop(reports, 10)
	if err != nil {
		t.Fatalf("SelectTop: %v", err)
	}
	if len(all) != 4 {
		t.Errorf("all = %d", len(all))
	}
}

func TestSelectTopValidation(t *testing.T) {
	if _, err := SelectTop(nil, 3); err == nil {
		t.Error("empty reports accepted")
	}
	if _, err := SelectTop(map[vlm.ModelID]*metrics.ClassReport{vlm.Grok2: {}}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestFuseHeadings(t *testing.T) {
	perHeading := [][scene.NumIndicators]bool{
		{true, false, false, false, false, false},
		{false, false, false, false, false, false},
		{false, false, false, false, false, false},
		{true, true, false, false, false, false},
	}
	anyFused, err := FuseHeadings(perHeading, FuseAny)
	if err != nil {
		t.Fatalf("FuseHeadings: %v", err)
	}
	if !anyFused[0] || !anyFused[1] || anyFused[2] {
		t.Errorf("any fusion = %v", anyFused)
	}
	maj, err := FuseHeadings(perHeading, FuseMajority)
	if err != nil {
		t.Fatalf("FuseHeadings: %v", err)
	}
	// Indicator 0 seen in 2/4 headings: not a strict majority.
	if maj[0] || maj[1] {
		t.Errorf("majority fusion = %v", maj)
	}
	if _, err := FuseHeadings(nil, FuseAny); err == nil {
		t.Error("empty fusion accepted")
	}
	if _, err := FuseHeadings(perHeading, FusionStrategy(9)); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestFusionStrategyString(t *testing.T) {
	if FuseAny.String() != "any" || FuseMajority.String() != "majority" {
		t.Error("strategy names wrong")
	}
	if FusionStrategy(9).String() != "FusionStrategy(9)" {
		t.Error("unknown strategy name wrong")
	}
}

func TestPaperCommittee(t *testing.T) {
	c, err := PaperCommittee()
	if err != nil {
		t.Fatalf("PaperCommittee: %v", err)
	}
	if c.Size() != 3 {
		t.Fatalf("committee size = %d", c.Size())
	}
	members := c.Members()
	want := []vlm.ModelID{vlm.Gemini15Pro, vlm.Claude37, vlm.Grok2}
	for i := range want {
		if members[i] != want[i] {
			t.Errorf("member %d = %s, want %s", i, members[i], want[i])
		}
	}
}

func TestCommitteeValidation(t *testing.T) {
	if _, err := NewCommittee(); err == nil {
		t.Error("empty committee accepted")
	}
	p, err := vlm.ProfileFor(vlm.Grok2)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := vlm.NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := vlm.NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCommittee(m1, m2); err == nil {
		t.Error("duplicate members accepted")
	}
}

func TestCommitteeClassify(t *testing.T) {
	c, err := PaperCommittee()
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := st.RenderExamples([]int{0}, 96)
	if err != nil {
		t.Fatal(err)
	}
	inds := scene.Indicators()
	answers, err := c.Classify(vlm.Request{Image: ex[0].Image, Indicators: inds[:]})
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if len(answers) != 6 {
		t.Fatalf("answers = %d", len(answers))
	}
}

// TestMajorityVotingBeatsMembers reproduces the paper's headline ensemble
// result at reduced scale: the three-model committee's average accuracy
// exceeds every individual member's.
func TestMajorityVotingBeatsMembers(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble sweep in -short mode")
	}
	st, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, st.Len())
	for i := range idx {
		idx[i] = i
	}
	ex, err := st.RenderExamples(idx, 96)
	if err != nil {
		t.Fatal(err)
	}
	inds := scene.Indicators()

	memberIDs := []vlm.ModelID{vlm.Gemini15Pro, vlm.Claude37, vlm.Grok2}
	members := make([]*vlm.Model, len(memberIDs))
	for i, id := range memberIDs {
		p, err := vlm.ProfileFor(id)
		if err != nil {
			t.Fatal(err)
		}
		members[i], err = vlm.NewModel(p)
		if err != nil {
			t.Fatal(err)
		}
	}
	memberAcc := make([]float64, len(members))
	var committeeAcc float64
	var memberReports = make([]metrics.ClassReport, len(members))
	var committeeReport metrics.ClassReport
	for i, e := range ex {
		truth := st.Frames[i].Scene.Presence()
		req := vlm.Request{Image: e.Image, Indicators: inds[:]}
		var all [][]bool
		for mi, m := range members {
			ans, err := m.Classify(req)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, ans)
			var pred [scene.NumIndicators]bool
			copy(pred[:], ans)
			memberReports[mi].AddVector(pred, truth)
		}
		voted, err := Vote(all)
		if err != nil {
			t.Fatal(err)
		}
		var pred [scene.NumIndicators]bool
		copy(pred[:], voted)
		committeeReport.AddVector(pred, truth)
	}
	for mi := range members {
		_, _, _, acc := memberReports[mi].Averages()
		memberAcc[mi] = acc
	}
	_, _, _, committeeAcc = committeeReport.Averages()
	for mi, id := range memberIDs {
		if committeeAcc <= memberAcc[mi] {
			t.Errorf("committee accuracy %.3f does not beat %s (%.3f)", committeeAcc, id, memberAcc[mi])
		}
	}
	// Paper reports 88.5% for the committee; allow generous tolerance at
	// reduced scale.
	if committeeAcc < 0.84 || committeeAcc > 0.95 {
		t.Errorf("committee accuracy %.3f outside plausible band around paper's 0.885", committeeAcc)
	}
}

// Property: voting is order-invariant in the model axis and agrees with
// unanimity.
func TestVoteProperties(t *testing.T) {
	f := func(a, b, c []bool) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if len(c) < n {
			n = len(c)
		}
		if n == 0 {
			return true
		}
		a, b, c = a[:n], b[:n], c[:n]
		v1, err := Vote([][]bool{a, b, c})
		if err != nil {
			return false
		}
		v2, err := Vote([][]bool{c, a, b})
		if err != nil {
			return false
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				return false
			}
			// Unanimity dominates.
			if a[i] && b[i] && c[i] && !v1[i] {
				return false
			}
			if !a[i] && !b[i] && !c[i] && v1[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fusing identical heading vectors returns that vector under
// both strategies.
func TestFuseIdenticalProperty(t *testing.T) {
	f := func(bits uint8) bool {
		var v [scene.NumIndicators]bool
		for k := 0; k < scene.NumIndicators; k++ {
			v[k] = bits&(1<<k) != 0
		}
		per := [][scene.NumIndicators]bool{v, v, v, v}
		anyF, err := FuseHeadings(per, FuseAny)
		if err != nil {
			return false
		}
		majF, err := FuseHeadings(per, FuseMajority)
		if err != nil {
			return false
		}
		return anyF == v && majF == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSelectTopAllTiedIsDeterministic: with every model at the same
// accuracy, repeated selections must return the same lexicographic
// order — map iteration randomness must never leak into the committee.
func TestSelectTopAllTiedIsDeterministic(t *testing.T) {
	reports := map[vlm.ModelID]*metrics.ClassReport{
		vlm.ChatGPT4oMini: reportWithAccuracy(t, 0.9),
		vlm.Gemini15Pro:   reportWithAccuracy(t, 0.9),
		vlm.Claude37:      reportWithAccuracy(t, 0.9),
		vlm.Grok2:         reportWithAccuracy(t, 0.9),
	}
	first, err := SelectTop(reports, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].ID > first[i].ID {
			t.Fatalf("tied selection not lexicographic: %v", first)
		}
	}
	for trial := 0; trial < 50; trial++ {
		again, err := SelectTop(reports, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if again[i].ID != first[i].ID {
				t.Fatalf("trial %d: order %v differs from %v", trial, again, first)
			}
		}
	}
}

// TestSelectTopKLargerThanReports: k beyond the report count clamps to
// all models, still fully ordered.
func TestSelectTopKLargerThanReports(t *testing.T) {
	reports := map[vlm.ModelID]*metrics.ClassReport{
		vlm.Grok2:       reportWithAccuracy(t, 0.8),
		vlm.Gemini15Pro: reportWithAccuracy(t, 0.9),
	}
	top, err := SelectTop(reports, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top = %d entries, want 2", len(top))
	}
	if top[0].ID != vlm.Gemini15Pro || top[1].ID != vlm.Grok2 {
		t.Errorf("order = %v", top)
	}
	// A single report works for any positive k.
	solo, err := SelectTop(map[vlm.ModelID]*metrics.ClassReport{vlm.Claude37: reportWithAccuracy(t, 0.7)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != 1 || solo[0].ID != vlm.Claude37 {
		t.Errorf("solo = %v", solo)
	}
}

// TestFuseHeadingsEmptyInputs: nil and empty (non-nil) inputs both
// error under both strategies rather than fabricating a vector.
func TestFuseHeadingsEmptyInputs(t *testing.T) {
	for _, strategy := range []FusionStrategy{FuseAny, FuseMajority} {
		if _, err := FuseHeadings(nil, strategy); err == nil {
			t.Errorf("%s: nil headings accepted", strategy)
		}
		if _, err := FuseHeadings([][scene.NumIndicators]bool{}, strategy); err == nil {
			t.Errorf("%s: empty headings accepted", strategy)
		}
	}
}

// TestFuseHeadingsSingleHeading: one heading is the identity for both
// strategies.
func TestFuseHeadingsSingleHeading(t *testing.T) {
	v := [scene.NumIndicators]bool{true, false, true, false, false, true}
	for _, strategy := range []FusionStrategy{FuseAny, FuseMajority} {
		got, err := FuseHeadings([][scene.NumIndicators]bool{v}, strategy)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if got != v {
			t.Errorf("%s: single-heading fusion = %v, want %v", strategy, got, v)
		}
	}
}

// TestFuseMajorityEvenSplitIsAbsent: exactly half the headings seeing
// an indicator is not a strict majority.
func TestFuseMajorityEvenSplitIsAbsent(t *testing.T) {
	per := [][scene.NumIndicators]bool{
		{true, true, false, false, false, false},
		{false, true, false, false, false, false},
	}
	got, err := FuseHeadings(per, FuseMajority)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] {
		t.Error("1/2 split fused to present under strict majority")
	}
	if !got[1] {
		t.Error("2/2 unanimity fused to absent")
	}
}

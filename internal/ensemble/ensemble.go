// Package ensemble implements the paper's majority-voting scheme
// (§IV-C2): combine per-image Yes/No answers from several LLMs, reaching
// a prediction "when at least two models agree" (for a three-model
// committee), plus the model-selection step that picks the top performers
// to vote. It also provides the multi-frame fusion the paper lists as
// future work (§V): combining the four headings of one coordinate.
package ensemble

import (
	"fmt"
	"sort"

	"nbhd/internal/metrics"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

// Vote combines per-model answer vectors by strict majority: an indicator
// is predicted present when more than half the models say yes. All answer
// vectors must be the same length. An even split predicts absent
// (conservative).
func Vote(answers [][]bool) ([]bool, error) {
	if len(answers) == 0 {
		return nil, fmt.Errorf("ensemble: no answer vectors")
	}
	n := len(answers[0])
	for i, a := range answers {
		if len(a) != n {
			return nil, fmt.Errorf("ensemble: answer vector %d has %d entries, want %d", i, len(a), n)
		}
	}
	out := make([]bool, n)
	for k := 0; k < n; k++ {
		yes := 0
		for _, a := range answers {
			if a[k] {
				yes++
			}
		}
		out[k] = yes*2 > len(answers)
	}
	return out, nil
}

// ModelScore pairs a model with its average accuracy.
type ModelScore struct {
	ID       vlm.ModelID
	Accuracy float64
}

// SelectTop ranks models by average accuracy (from their evaluation
// reports) and returns the best k, the paper's "top three LLMs" step.
// Ties break lexicographically on the model ID for determinism.
func SelectTop(reports map[vlm.ModelID]*metrics.ClassReport, k int) ([]ModelScore, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ensemble: k must be positive, got %d", k)
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("ensemble: no reports")
	}
	scores := make([]ModelScore, 0, len(reports))
	for id, rep := range reports {
		_, _, _, acc := rep.Averages()
		scores = append(scores, ModelScore{ID: id, Accuracy: acc})
	}
	sort.Slice(scores, func(a, b int) bool {
		if scores[a].Accuracy != scores[b].Accuracy {
			return scores[a].Accuracy > scores[b].Accuracy
		}
		return scores[a].ID < scores[b].ID
	})
	if k > len(scores) {
		k = len(scores)
	}
	return scores[:k], nil
}

// FusionStrategy combines the four per-heading answers of one coordinate.
type FusionStrategy int

const (
	// FuseAny marks an indicator present if any heading sees it —
	// appropriate for coordinate-level environment profiling, where an
	// indicator visible in any direction exists at the location.
	FuseAny FusionStrategy = iota + 1
	// FuseMajority requires more than half the headings to agree.
	FuseMajority
)

// String names the strategy.
func (f FusionStrategy) String() string {
	switch f {
	case FuseAny:
		return "any"
	case FuseMajority:
		return "majority"
	default:
		return fmt.Sprintf("FusionStrategy(%d)", int(f))
	}
}

// FuseHeadings combines per-heading presence vectors into one
// coordinate-level vector (§V future work: "incorporate multiple
// consecutive images in different directions").
func FuseHeadings(perHeading [][scene.NumIndicators]bool, strategy FusionStrategy) ([scene.NumIndicators]bool, error) {
	var out [scene.NumIndicators]bool
	if len(perHeading) == 0 {
		return out, fmt.Errorf("ensemble: no heading vectors")
	}
	for k := 0; k < scene.NumIndicators; k++ {
		yes := 0
		for _, v := range perHeading {
			if v[k] {
				yes++
			}
		}
		switch strategy {
		case FuseAny:
			out[k] = yes > 0
		case FuseMajority:
			out[k] = yes*2 > len(perHeading)
		default:
			return out, fmt.Errorf("ensemble: unknown fusion strategy %d", int(strategy))
		}
	}
	return out, nil
}

// Committee is a fixed set of models whose answers are combined by
// majority vote.
type Committee struct {
	models []*vlm.Model
}

// NewCommittee builds a committee; at least one model is required and an
// odd count is recommended (even committees break ties toward absent).
func NewCommittee(models ...*vlm.Model) (*Committee, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("ensemble: committee needs at least one model")
	}
	seen := make(map[vlm.ModelID]bool, len(models))
	for _, m := range models {
		if seen[m.ID()] {
			return nil, fmt.Errorf("ensemble: duplicate committee member %q", m.ID())
		}
		seen[m.ID()] = true
	}
	return &Committee{models: append([]*vlm.Model(nil), models...)}, nil
}

// Size returns the number of members.
func (c *Committee) Size() int { return len(c.models) }

// Members returns the member IDs in committee order.
func (c *Committee) Members() []vlm.ModelID {
	out := make([]vlm.ModelID, len(c.models))
	for i, m := range c.models {
		out[i] = m.ID()
	}
	return out
}

// Classify runs every member on the request and majority-votes the
// answers.
func (c *Committee) Classify(req vlm.Request) ([]bool, error) {
	all := make([][]bool, 0, len(c.models))
	for _, m := range c.models {
		answers, err := m.Classify(req)
		if err != nil {
			return nil, fmt.Errorf("ensemble: member %s: %w", m.ID(), err)
		}
		all = append(all, answers)
	}
	return Vote(all)
}

// ClassifyPerceived is Classify with precomputed perception features:
// every member consumes the same evidence, so an n-member committee
// perceives the frame zero times instead of n. Votes are bit-identical
// to Classify since members share the perception pipeline.
func (c *Committee) ClassifyPerceived(req vlm.Request, feats vlm.Features) ([]bool, error) {
	all := make([][]bool, 0, len(c.models))
	for _, m := range c.models {
		answers, err := m.ClassifyPerceived(req, feats)
		if err != nil {
			return nil, fmt.Errorf("ensemble: member %s: %w", m.ID(), err)
		}
		all = append(all, answers)
	}
	return Vote(all)
}

// PaperCommittee builds the paper's top-three committee: Gemini 1.5 Pro,
// Claude 3.7, and Grok 2 (§IV-C2).
func PaperCommittee() (*Committee, error) {
	ids := []vlm.ModelID{vlm.Gemini15Pro, vlm.Claude37, vlm.Grok2}
	models := make([]*vlm.Model, 0, len(ids))
	for _, id := range ids {
		p, err := vlm.ProfileFor(id)
		if err != nil {
			return nil, err
		}
		m, err := vlm.NewModel(p)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return NewCommittee(models...)
}

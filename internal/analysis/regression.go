package analysis

import (
	"fmt"
	"math"

	"nbhd/internal/scene"
)

// RegressionResult is a fitted multivariate linear model of outcome
// prevalence on indicator rates — the "adjusted" analysis the
// neighborhood-health literature (paper refs [5], [6], [11]) runs on top
// of street-view-derived indicators, where simple correlations confound
// (urban tracts have more sidewalks *and* more streetlights).
type RegressionResult struct {
	// Intercept is the fitted constant term.
	Intercept float64
	// Coef holds per-indicator fitted coefficients.
	Coef [scene.NumIndicators]float64
	// R2 is the coefficient of determination on the fitting data.
	R2 float64
	// N is the number of tracts fitted.
	N int
}

// FitRegression estimates an ordinary-least-squares model of outcomes on
// tract indicator rates, solving the normal equations with Gaussian
// elimination (partial pivoting). It needs more tracts than parameters.
func FitRegression(tracts []TractProfile, outcomes []Outcome) (*RegressionResult, error) {
	const params = scene.NumIndicators + 1
	if len(tracts) != len(outcomes) {
		return nil, fmt.Errorf("analysis: %d tracts vs %d outcomes", len(tracts), len(outcomes))
	}
	if len(tracts) <= params {
		return nil, fmt.Errorf("analysis: regression needs > %d tracts, got %d", params, len(tracts))
	}
	byID := make(map[string]float64, len(outcomes))
	for _, o := range outcomes {
		byID[o.TractID] = o.Prevalence
	}

	// Design matrix row: [1, rates...]; accumulate XᵀX and Xᵀy.
	var xtx [params][params]float64
	var xty [params]float64
	ys := make([]float64, 0, len(tracts))
	for _, tp := range tracts {
		y, ok := byID[tp.TractID]
		if !ok {
			return nil, fmt.Errorf("analysis: no outcome for tract %s", tp.TractID)
		}
		ys = append(ys, y)
		var row [params]float64
		row[0] = 1
		for k := 0; k < scene.NumIndicators; k++ {
			row[k+1] = tp.Rates[k]
		}
		for i := 0; i < params; i++ {
			for j := 0; j < params; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y
		}
	}

	beta, err := solveSymmetric(xtx, xty)
	if err != nil {
		return nil, err
	}
	res := &RegressionResult{Intercept: beta[0], N: len(tracts)}
	for k := 0; k < scene.NumIndicators; k++ {
		res.Coef[k] = beta[k+1]
	}

	// R² against the mean predictor.
	var meanY float64
	for _, y := range ys {
		meanY += y
	}
	meanY /= float64(len(ys))
	var ssRes, ssTot float64
	for i, tp := range tracts {
		pred := res.Intercept
		for k := 0; k < scene.NumIndicators; k++ {
			pred += res.Coef[k] * tp.Rates[k]
		}
		d := ys[i] - pred
		ssRes += d * d
		t := ys[i] - meanY
		ssTot += t * t
	}
	if ssTot > 0 {
		res.R2 = 1 - ssRes/ssTot
	}
	return res, nil
}

// solveSymmetric solves Ax=b for a small dense system via Gaussian
// elimination with partial pivoting. A ridge epsilon stabilizes
// collinear indicator rates.
func solveSymmetric(a [scene.NumIndicators + 1][scene.NumIndicators + 1]float64, b [scene.NumIndicators + 1]float64) ([scene.NumIndicators + 1]float64, error) {
	const n = scene.NumIndicators + 1
	const ridge = 1e-9
	for i := 0; i < n; i++ {
		a[i][i] += ridge
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return b, fmt.Errorf("analysis: singular design matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	var x [n]float64
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// Predict evaluates the fitted model on one tract.
func (r *RegressionResult) Predict(tp TractProfile) float64 {
	pred := r.Intercept
	for k := 0; k < scene.NumIndicators; k++ {
		pred += r.Coef[k] * tp.Rates[k]
	}
	return pred
}

// Package analysis is the pipeline's final stage (Fig. 1's "Neighborhood
// Environment Analysis"): aggregating per-frame indicator predictions
// into coordinate- and tract-level environment profiles, scoring
// neighborhoods, and estimating associations between environmental
// indicators and (synthetic) health outcomes — the §I motivation that
// powerline visibility correlates with obesity/diabetes prevalence while
// sidewalk access correlates with better outcomes.
package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nbhd/internal/geo"
	"nbhd/internal/scene"
)

// LocationProfile is one coordinate's fused indicator presence.
type LocationProfile struct {
	Coordinate geo.Coordinate
	County     string
	Presence   [scene.NumIndicators]bool
}

// TractProfile aggregates locations into one analysis unit.
type TractProfile struct {
	// TractID names the tract, e.g. "robeson-03-05".
	TractID string
	// County is the tract's county.
	County string
	// Locations is the number of aggregated coordinates.
	Locations int
	// Rates holds per-indicator presence fractions in [0,1].
	Rates [scene.NumIndicators]float64
}

// Tracts buckets location profiles into a grid of the given cell size in
// feet (per county) and computes per-tract indicator rates — the unit at
// which public-health studies correlate environment with outcomes.
func Tracts(locations []LocationProfile, cellFeet float64) ([]TractProfile, error) {
	if cellFeet <= 0 {
		return nil, fmt.Errorf("analysis: tract cell size must be positive, got %f", cellFeet)
	}
	if len(locations) == 0 {
		return nil, fmt.Errorf("analysis: no locations")
	}
	type acc struct {
		county string
		count  int
		yes    [scene.NumIndicators]int
	}
	cells := make(map[string]*acc)
	for _, loc := range locations {
		gx := int(loc.Coordinate.Lng * geo.FeetPerDegreeLat * math.Cos(loc.Coordinate.Lat*math.Pi/180) / cellFeet)
		gy := int(loc.Coordinate.Lat * geo.FeetPerDegreeLat / cellFeet)
		key := fmt.Sprintf("%s-%d-%d", loc.County, gy, gx)
		a, ok := cells[key]
		if !ok {
			a = &acc{county: loc.County}
			cells[key] = a
		}
		a.count++
		for k := 0; k < scene.NumIndicators; k++ {
			if loc.Presence[k] {
				a.yes[k]++
			}
		}
	}
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]TractProfile, 0, len(keys))
	for _, key := range keys {
		a := cells[key]
		tp := TractProfile{TractID: key, County: a.county, Locations: a.count}
		for k := 0; k < scene.NumIndicators; k++ {
			tp.Rates[k] = float64(a.yes[k]) / float64(a.count)
		}
		out = append(out, tp)
	}
	return out, nil
}

// EnvironmentScore summarizes a tract on two axes used across the
// neighborhood-health literature: walkability (sidewalks, streetlights)
// and infrastructure burden (visible powerlines, absence of multilane
// access).
type EnvironmentScore struct {
	TractID string
	// Walkability in [0,1]: mean of sidewalk and streetlight rates.
	Walkability float64
	// Burden in [0,1]: powerline rate, discounted by road access.
	Burden float64
}

// Score computes environment scores per tract.
func Score(tracts []TractProfile) []EnvironmentScore {
	out := make([]EnvironmentScore, 0, len(tracts))
	for _, tp := range tracts {
		sw := tp.Rates[scene.Sidewalk.Index()]
		sl := tp.Rates[scene.Streetlight.Index()]
		pl := tp.Rates[scene.Powerline.Index()]
		mr := tp.Rates[scene.MultilaneRoad.Index()]
		out = append(out, EnvironmentScore{
			TractID:     tp.TractID,
			Walkability: (sw + sl) / 2,
			Burden:      clamp01(pl - 0.2*mr),
		})
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// HealthModel is the synthetic outcome generator standing in for the
// public-health statistics the paper's motivating literature links to
// street-view indicators. Prevalence is a logistic function of indicator
// rates with documented coefficient signs: powerlines raise obesity and
// diabetes risk; sidewalks and streetlights lower it.
type HealthModel struct {
	// Intercept is the baseline log-odds.
	Intercept float64
	// Coef holds per-indicator log-odds coefficients.
	Coef [scene.NumIndicators]float64
	// NoiseSD perturbs tract prevalence (normal, truncated to [0,1]).
	NoiseSD float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultObesityModel returns coefficients matching the literature's
// directional findings ([5], [6] in the paper).
func DefaultObesityModel(seed int64) HealthModel {
	var coef [scene.NumIndicators]float64
	coef[scene.Powerline.Index()] = 0.9
	coef[scene.Sidewalk.Index()] = -0.7
	coef[scene.Streetlight.Index()] = -0.4
	coef[scene.Apartment.Index()] = 0.2
	return HealthModel{Intercept: -0.6, Coef: coef, NoiseSD: 0.03, Seed: seed}
}

// Outcome is one tract's synthetic health statistic.
type Outcome struct {
	TractID    string
	Prevalence float64
}

// Generate produces per-tract outcome prevalence under the model.
func (h *HealthModel) Generate(tracts []TractProfile) ([]Outcome, error) {
	if len(tracts) == 0 {
		return nil, fmt.Errorf("analysis: no tracts")
	}
	if h.NoiseSD < 0 {
		return nil, fmt.Errorf("analysis: noise SD must be non-negative, got %f", h.NoiseSD)
	}
	rng := rand.New(rand.NewSource(h.Seed))
	out := make([]Outcome, 0, len(tracts))
	for _, tp := range tracts {
		logit := h.Intercept
		for k := 0; k < scene.NumIndicators; k++ {
			logit += h.Coef[k] * tp.Rates[k]
		}
		p := 1/(1+math.Exp(-logit)) + rng.NormFloat64()*h.NoiseSD
		out = append(out, Outcome{TractID: tp.TractID, Prevalence: clamp01(p)})
	}
	return out, nil
}

// Association is the estimated relationship between one indicator's tract
// rate and an outcome.
type Association struct {
	Indicator scene.Indicator
	// Pearson is the correlation coefficient in [-1,1].
	Pearson float64
	// N is the number of tracts.
	N int
}

// Associations computes the Pearson correlation between each indicator's
// tract rates and outcome prevalence, pairing by tract ID.
func Associations(tracts []TractProfile, outcomes []Outcome) ([]Association, error) {
	if len(tracts) != len(outcomes) {
		return nil, fmt.Errorf("analysis: %d tracts vs %d outcomes", len(tracts), len(outcomes))
	}
	byID := make(map[string]float64, len(outcomes))
	for _, o := range outcomes {
		byID[o.TractID] = o.Prevalence
	}
	out := make([]Association, 0, scene.NumIndicators)
	for _, ind := range scene.Indicators() {
		var xs, ys []float64
		for _, tp := range tracts {
			y, ok := byID[tp.TractID]
			if !ok {
				return nil, fmt.Errorf("analysis: no outcome for tract %s", tp.TractID)
			}
			xs = append(xs, tp.Rates[ind.Index()])
			ys = append(ys, y)
		}
		out = append(out, Association{Indicator: ind, Pearson: pearson(xs, ys), N: len(xs)})
	}
	return out, nil
}

// pearson computes the correlation coefficient; degenerate variance
// yields 0.
func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

package analysis

import (
	"math"
	"testing"

	"nbhd/internal/geo"
	"nbhd/internal/scene"
)

func locAt(county string, latFeet, lngFeet float64, presence [scene.NumIndicators]bool) LocationProfile {
	return LocationProfile{
		Coordinate: geo.Coordinate{
			Lat: latFeet / geo.FeetPerDegreeLat,
			Lng: lngFeet / geo.FeetPerDegreeLat, // near equator cos≈1
		},
		County:   county,
		Presence: presence,
	}
}

func TestTractsBucketsByCell(t *testing.T) {
	var withSW, without [scene.NumIndicators]bool
	withSW[scene.Sidewalk.Index()] = true
	locs := []LocationProfile{
		locAt("a", 100, 100, withSW),
		locAt("a", 200, 200, without),  // same 1000ft cell
		locAt("a", 5000, 5000, withSW), // different cell
	}
	tracts, err := Tracts(locs, 1000)
	if err != nil {
		t.Fatalf("Tracts: %v", err)
	}
	if len(tracts) != 2 {
		t.Fatalf("tracts = %d, want 2", len(tracts))
	}
	// Find the two-location tract.
	var big *TractProfile
	for i := range tracts {
		if tracts[i].Locations == 2 {
			big = &tracts[i]
		}
	}
	if big == nil {
		t.Fatal("no 2-location tract")
	}
	if got := big.Rates[scene.Sidewalk.Index()]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sidewalk rate = %f, want 0.5", got)
	}
}

func TestTractsValidation(t *testing.T) {
	if _, err := Tracts(nil, 1000); err == nil {
		t.Error("empty locations accepted")
	}
	if _, err := Tracts([]LocationProfile{{}}, 0); err == nil {
		t.Error("zero cell size accepted")
	}
}

func TestTractsDeterministicOrder(t *testing.T) {
	var p [scene.NumIndicators]bool
	locs := []LocationProfile{
		locAt("b", 100, 100, p),
		locAt("a", 9000, 9000, p),
		locAt("c", 20000, 100, p),
	}
	a, err := Tracts(locs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tracts(locs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].TractID != b[i].TractID {
			t.Fatal("tract order not deterministic")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].TractID > a[i].TractID {
			t.Fatal("tracts not sorted")
		}
	}
}

func TestScore(t *testing.T) {
	tp := TractProfile{TractID: "x", Locations: 4}
	tp.Rates[scene.Sidewalk.Index()] = 0.8
	tp.Rates[scene.Streetlight.Index()] = 0.4
	tp.Rates[scene.Powerline.Index()] = 0.5
	tp.Rates[scene.MultilaneRoad.Index()] = 1.0
	scores := Score([]TractProfile{tp})
	if len(scores) != 1 {
		t.Fatalf("scores = %d", len(scores))
	}
	if math.Abs(scores[0].Walkability-0.6) > 1e-12 {
		t.Errorf("walkability = %f", scores[0].Walkability)
	}
	if math.Abs(scores[0].Burden-0.3) > 1e-12 {
		t.Errorf("burden = %f", scores[0].Burden)
	}
}

func TestHealthModelGenerate(t *testing.T) {
	m := DefaultObesityModel(1)
	var highPL, lowPL TractProfile
	highPL.TractID = "high"
	highPL.Rates[scene.Powerline.Index()] = 1.0
	lowPL.TractID = "low"
	lowPL.Rates[scene.Sidewalk.Index()] = 1.0

	out, err := m.Generate([]TractProfile{highPL, lowPL})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("outcomes = %d", len(out))
	}
	if out[0].Prevalence <= out[1].Prevalence {
		t.Errorf("powerline tract prevalence %f should exceed sidewalk tract %f", out[0].Prevalence, out[1].Prevalence)
	}
	for _, o := range out {
		if o.Prevalence < 0 || o.Prevalence > 1 {
			t.Errorf("prevalence %f outside [0,1]", o.Prevalence)
		}
	}
	if _, err := m.Generate(nil); err == nil {
		t.Error("empty tract list accepted")
	}
	bad := m
	bad.NoiseSD = -1
	if _, err := bad.Generate([]TractProfile{highPL}); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestAssociationsRecoverSigns(t *testing.T) {
	// Build tracts spanning the indicator-rate space and generate
	// outcomes; the estimated associations must recover the model's
	// coefficient signs.
	var tracts []TractProfile
	for i := 0; i < 40; i++ {
		var tp TractProfile
		tp.TractID = string(rune('a'+i%26)) + string(rune('0'+i/26))
		tp.Locations = 5
		tp.Rates[scene.Powerline.Index()] = float64(i%8) / 7
		tp.Rates[scene.Sidewalk.Index()] = float64((i+3)%8) / 7
		tp.Rates[scene.Streetlight.Index()] = float64((i+5)%8) / 7
		tracts = append(tracts, tp)
	}
	m := DefaultObesityModel(2)
	outcomes, err := m.Generate(tracts)
	if err != nil {
		t.Fatal(err)
	}
	assocs, err := Associations(tracts, outcomes)
	if err != nil {
		t.Fatalf("Associations: %v", err)
	}
	byInd := make(map[scene.Indicator]float64)
	for _, a := range assocs {
		byInd[a.Indicator] = a.Pearson
		if a.N != len(tracts) {
			t.Errorf("%v N = %d", a.Indicator, a.N)
		}
	}
	if byInd[scene.Powerline] <= 0 {
		t.Errorf("powerline association = %f, want positive", byInd[scene.Powerline])
	}
	if byInd[scene.Sidewalk] >= 0 {
		t.Errorf("sidewalk association = %f, want negative", byInd[scene.Sidewalk])
	}
}

func TestAssociationsValidation(t *testing.T) {
	if _, err := Associations([]TractProfile{{TractID: "a"}}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Associations([]TractProfile{{TractID: "a"}}, []Outcome{{TractID: "b"}}); err == nil {
		t.Error("unmatched tract accepted")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := pearson(xs, xs); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %f", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %f", got)
	}
	flat := []float64{2, 2, 2, 2}
	if got := pearson(xs, flat); got != 0 {
		t.Errorf("degenerate correlation = %f", got)
	}
	if got := pearson([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("n=1 correlation = %f", got)
	}
}

func TestFitRegressionRecoversCoefficients(t *testing.T) {
	// Outcomes generated by a noiseless model must be recovered almost
	// exactly by OLS.
	m := DefaultObesityModel(3)
	m.NoiseSD = 0
	var tracts []TractProfile
	for i := 0; i < 60; i++ {
		var tp TractProfile
		tp.TractID = "t" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		tp.Locations = 4
		for k := 0; k < scene.NumIndicators; k++ {
			tp.Rates[k] = float64((i*7+k*13)%11) / 10
		}
		tracts = append(tracts, tp)
	}
	outcomes, err := m.Generate(tracts)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitRegression(tracts, outcomes)
	if err != nil {
		t.Fatalf("FitRegression: %v", err)
	}
	// The generator is logistic, OLS is linear; signs and relative
	// magnitude must still recover, and R2 should be high on this range.
	if fit.Coef[scene.Powerline.Index()] <= 0 {
		t.Errorf("powerline coefficient = %f, want positive", fit.Coef[scene.Powerline.Index()])
	}
	if fit.Coef[scene.Sidewalk.Index()] >= 0 {
		t.Errorf("sidewalk coefficient = %f, want negative", fit.Coef[scene.Sidewalk.Index()])
	}
	if fit.R2 < 0.9 {
		t.Errorf("R2 = %f on noiseless data", fit.R2)
	}
	if fit.N != len(tracts) {
		t.Errorf("N = %d", fit.N)
	}
	// Predictions track outcomes.
	var maxErr float64
	byID := make(map[string]float64)
	for _, o := range outcomes {
		byID[o.TractID] = o.Prevalence
	}
	for _, tp := range tracts {
		if e := math.Abs(fit.Predict(tp) - byID[tp.TractID]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.1 {
		t.Errorf("max prediction error = %f", maxErr)
	}
}

func TestFitRegressionValidation(t *testing.T) {
	if _, err := FitRegression(nil, nil); err == nil {
		t.Error("empty inputs accepted")
	}
	few := make([]TractProfile, 5)
	out := make([]Outcome, 5)
	for i := range few {
		few[i].TractID = string(rune('a' + i))
		out[i].TractID = few[i].TractID
	}
	if _, err := FitRegression(few, out); err == nil {
		t.Error("underdetermined system accepted")
	}
	// Mismatched tract id.
	many := make([]TractProfile, 10)
	outs := make([]Outcome, 10)
	for i := range many {
		many[i].TractID = string(rune('a' + i))
		outs[i].TractID = "zz"
	}
	if _, err := FitRegression(many, outs); err == nil {
		t.Error("unmatched outcomes accepted")
	}
}

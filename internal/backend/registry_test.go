package backend_test

import (
	"context"
	"strings"
	"testing"

	"nbhd/internal/backend"
	"nbhd/internal/vlm"
)

func TestOpenUnknownKindListsRegistered(t *testing.T) {
	_, err := backend.Open(context.Background(), backend.Spec{Kind: "nope"})
	if err == nil {
		t.Fatal("Open accepted an unknown kind")
	}
	for _, kind := range []string{"nope", "vlm", "http", "yolo", "cnn", "voting", "committee"} {
		if !strings.Contains(err.Error(), kind) {
			t.Errorf("error %q does not mention %q", err, kind)
		}
	}
}

func TestOpenVLMSpec(t *testing.T) {
	b, err := backend.Open(context.Background(), backend.Spec{Kind: "vlm", Model: string(vlm.Gemini15Pro)})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Name(); got != "vlm:gemini-1.5-pro" {
		t.Errorf("opened backend named %q", got)
	}
	if !b.Capabilities().PerceivedFeatures {
		t.Error("vlm backend should consume the perception cache")
	}
}

func TestOpenVLMSpecUnknownModel(t *testing.T) {
	if _, err := backend.Open(context.Background(), backend.Spec{Kind: "vlm", Model: "gpt-9"}); err == nil {
		t.Fatal("Open accepted an unknown model ID")
	}
	if _, err := backend.Open(context.Background(), backend.Spec{Kind: "vlm"}); err == nil {
		t.Fatal("Open accepted a vlm spec with no model")
	}
}

func TestOpenVotingSpecRecursesMembers(t *testing.T) {
	spec := backend.Spec{
		Kind: "voting",
		Name: "duo",
		Members: []backend.Spec{
			{Kind: "vlm", Model: string(vlm.Gemini15Pro)},
			{Kind: "vlm", Model: string(vlm.Claude37)},
		},
	}
	b, err := backend.Open(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Name(); got != "duo" {
		t.Errorf("voting backend named %q", got)
	}
	bad := spec
	bad.Members = append(bad.Members, backend.Spec{Kind: "bogus"})
	if _, err := backend.Open(context.Background(), bad); err == nil {
		t.Fatal("Open accepted a voting spec with an unknown member kind")
	}
}

func TestOpenTrainedKindsNeedEnv(t *testing.T) {
	for _, kind := range []string{"yolo", "cnn"} {
		if _, err := backend.Open(context.Background(), backend.Spec{Kind: kind}); err == nil {
			t.Errorf("Open %s without an env should fail", kind)
		}
	}
}

func TestRegisterCustomKind(t *testing.T) {
	backend.Register("registry-test-custom", func(ctx context.Context, s backend.Spec, env backend.Env) (backend.Backend, error) {
		return backend.NewLocal("custom", stubClassifier{})
	})
	b, err := backend.Open(context.Background(), backend.Spec{Kind: "registry-test-custom"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "custom" {
		t.Errorf("custom backend named %q", b.Name())
	}
	found := false
	for _, k := range backend.Kinds() {
		if k == "registry-test-custom" {
			found = true
		}
	}
	if !found {
		t.Error("Kinds does not list the custom kind")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	backend.Register("registry-test-custom", func(ctx context.Context, s backend.Spec, env backend.Env) (backend.Backend, error) {
		return nil, nil
	})
}

// stubClassifier answers "no" to everything.
type stubClassifier struct{}

func (stubClassifier) Classify(req vlm.Request) ([]bool, error) {
	return make([]bool, len(req.Indicators)), nil
}

package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"nbhd/internal/ensemble"
)

func init() {
	Register("voting", func(ctx context.Context, s Spec, env Env) (Backend, error) {
		if len(s.Members) == 0 {
			return nil, fmt.Errorf("voting spec needs members")
		}
		members := make([]Backend, 0, len(s.Members))
		for i, ms := range s.Members {
			m, err := OpenWith(ctx, ms, env)
			if err != nil {
				return nil, fmt.Errorf("member %d: %w", i, err)
			}
			members = append(members, m)
		}
		return NewVoting(s.Name, members...)
	})
}

// Voting majority-votes the answers of member backends — the
// backend-layer generalization of ensemble.Committee. Because it uses
// the same ensemble.Vote rule, a Voting backend over Local members is
// bit-identical to a Local backend over the equivalent committee, and a
// Voting backend over HTTP members runs the paper's committee fully
// remotely.
type Voting struct {
	name    string
	members []Backend
	caps    Capabilities
}

// NewVoting builds a voting backend over the members. All members must
// agree on the render resolution; the merged capabilities are the most
// conservative of the members'.
func NewVoting(name string, members ...Backend) (*Voting, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("backend: voting needs at least one member")
	}
	if name == "" {
		name = "voting"
	}
	caps := members[0].Capabilities()
	caps.PreferredBatch = normBatch(caps.PreferredBatch)
	for _, m := range members[1:] {
		mc := m.Capabilities()
		caps.PerceivedFeatures = caps.PerceivedFeatures && mc.PerceivedFeatures
		if b := normBatch(mc.PreferredBatch); b < caps.PreferredBatch {
			caps.PreferredBatch = b
		}
		if mc.MaxConcurrency > 0 && (caps.MaxConcurrency <= 0 || mc.MaxConcurrency < caps.MaxConcurrency) {
			caps.MaxConcurrency = mc.MaxConcurrency
		}
		if mc.RenderSize != caps.RenderSize {
			return nil, fmt.Errorf("backend: voting members disagree on render size (%d vs %d)", caps.RenderSize, mc.RenderSize)
		}
	}
	return &Voting{name: name, members: append([]Backend(nil), members...), caps: caps}, nil
}

func normBatch(b int) int {
	if b < 1 {
		return 1
	}
	return b
}

// Name identifies the backend.
func (v *Voting) Name() string { return v.name }

// Members returns the member backends in voting order.
func (v *Voting) Members() []Backend { return append([]Backend(nil), v.members...) }

// Close closes every member that owns resources (e.g. HTTP members'
// connection pools), joining their errors.
func (v *Voting) Close() error {
	var errs []error
	for _, m := range v.members {
		if err := Close(m); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Capabilities returns the most conservative merge of the members'.
func (v *Voting) Capabilities() Capabilities { return v.caps }

// Classify asks every member for the batch concurrently — a remote
// committee's latency is the slowest member, not the sum — and
// majority-votes per item. The first member error cancels the rest.
func (v *Voting) Classify(ctx context.Context, req BatchRequest) (BatchResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	perMember := make([]BatchResult, len(v.members))
	errs := make([]error, len(v.members))
	var wg sync.WaitGroup
	for mi := range v.members {
		wg.Add(1)
		go func(mi int) {
			defer wg.Done()
			m := v.members[mi]
			res, err := m.Classify(ctx, req)
			if err != nil {
				errs[mi] = fmt.Errorf("backend: %s: member %s: %w", v.name, m.Name(), err)
				cancel()
				return
			}
			if len(res.Answers) != len(req.Items) {
				errs[mi] = fmt.Errorf("backend: %s: member %s returned %d answer vectors for %d items", v.name, m.Name(), len(res.Answers), len(req.Items))
				cancel()
				return
			}
			perMember[mi] = res
		}(mi)
	}
	wg.Wait()
	// Report failures in member order, skipping cancellations our own
	// cancel() induced so the root cause isn't masked.
	var canceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if canceled == nil {
				canceled = err
			}
			continue
		}
		return BatchResult{}, err
	}
	if canceled != nil {
		return BatchResult{}, canceled
	}
	answers := make([][]bool, len(req.Items))
	for i := range req.Items {
		votes := make([][]bool, len(v.members))
		for mi := range v.members {
			votes[mi] = perMember[mi].Answers[i]
		}
		voted, err := ensemble.Vote(votes)
		if err != nil {
			return BatchResult{}, fmt.Errorf("backend: %s: item %s: %w", v.name, req.Items[i].ID, err)
		}
		answers[i] = voted
	}
	return BatchResult{Answers: answers}, nil
}

package backend

import (
	"context"
	"fmt"
	"strings"

	"nbhd/internal/ensemble"
	"nbhd/internal/vlm"
)

// Classifier is the minimal single-frame classification surface the
// in-process adapters wrap: a simulated vision LLM, a committee, or any
// test double. It mirrors core.Classifier, which satisfies it
// structurally.
type Classifier interface {
	Classify(req vlm.Request) ([]bool, error)
}

// PerceivingClassifier is a Classifier with the shared-perception fast
// path: it can consume features perceived once per frame by the engine.
type PerceivingClassifier interface {
	Classifier
	ClassifyPerceived(req vlm.Request, feats vlm.Features) ([]bool, error)
}

// The in-repo classifiers all support the fast path.
var (
	_ PerceivingClassifier = (*vlm.Model)(nil)
	_ PerceivingClassifier = (*ensemble.Committee)(nil)
)

func init() {
	Register("vlm", func(ctx context.Context, s Spec, env Env) (Backend, error) {
		m, err := specModel(s.Model)
		if err != nil {
			return nil, err
		}
		return NewVLM(m)
	})
	Register("committee", func(ctx context.Context, s Spec, env Env) (Backend, error) {
		if len(s.Models) == 0 {
			return nil, fmt.Errorf("committee spec needs models")
		}
		members := make([]*vlm.Model, 0, len(s.Models))
		for _, id := range s.Models {
			m, err := specModel(id)
			if err != nil {
				return nil, err
			}
			members = append(members, m)
		}
		c, err := ensemble.NewCommittee(members...)
		if err != nil {
			return nil, err
		}
		return NewCommittee(c)
	})
}

// specModel builds one builtin simulated model from its spec ID.
func specModel(id string) (*vlm.Model, error) {
	if id == "" {
		return nil, fmt.Errorf("spec needs a model ID (one of %v)", vlm.AllModels())
	}
	profile, err := vlm.ProfileFor(vlm.ModelID(id))
	if err != nil {
		return nil, err
	}
	return vlm.NewModel(profile)
}

// Local adapts an in-process Classifier to the Backend interface. Its
// answers are bit-identical to calling the classifier directly: the
// adapter builds the same vlm.Request the pre-backend evaluation loop
// built, and routes through ClassifyPerceived when the engine supplies
// cached features.
type Local struct {
	name string
	c    Classifier
	pc   PerceivingClassifier // non-nil when c has the fast path
}

// NewLocal wraps a classifier. The name labels the backend in errors and
// reports; empty defaults to "local".
func NewLocal(name string, c Classifier) (*Local, error) {
	if c == nil {
		return nil, fmt.Errorf("backend: nil classifier")
	}
	if name == "" {
		name = "local"
	}
	l := &Local{name: name, c: c}
	if pc, ok := c.(PerceivingClassifier); ok {
		l.pc = pc
	}
	return l, nil
}

// NewVLM wraps one builtin simulated vision LLM.
func NewVLM(m *vlm.Model) (*Local, error) {
	if m == nil {
		return nil, fmt.Errorf("backend: nil model")
	}
	return NewLocal("vlm:"+string(m.ID()), m)
}

// NewCommittee wraps a majority-voting committee of builtin models.
func NewCommittee(c *ensemble.Committee) (*Local, error) {
	if c == nil {
		return nil, fmt.Errorf("backend: nil committee")
	}
	ids := make([]string, 0, c.Size())
	for _, id := range c.Members() {
		ids = append(ids, string(id))
	}
	return NewLocal("committee:"+strings.Join(ids, "+"), c)
}

// Name identifies the backend.
func (l *Local) Name() string { return l.name }

// Capabilities: in-process classifiers are stateless per call, so any
// concurrency and batch shape works; frame-at-a-time keeps the engine's
// work distribution fine-grained.
func (l *Local) Capabilities() Capabilities {
	return Capabilities{PerceivedFeatures: l.pc != nil}
}

// Classify answers each item in order, using the perception fast path
// when the engine precomputed features.
func (l *Local) Classify(ctx context.Context, req BatchRequest) (BatchResult, error) {
	answers := make([][]bool, len(req.Items))
	for i := range req.Items {
		if err := ctx.Err(); err != nil {
			return BatchResult{}, err
		}
		it := &req.Items[i]
		r := vlm.Request{
			Image:       it.Image,
			Indicators:  req.Options.Indicators,
			Language:    req.Options.Language,
			Mode:        req.Options.Mode,
			Temperature: req.Options.Temperature,
			TopP:        req.Options.TopP,
			Nonce:       req.Options.Nonce,
		}
		var (
			ans []bool
			err error
		)
		if l.pc != nil && it.Feats != nil {
			ans, err = l.pc.ClassifyPerceived(r, *it.Feats)
		} else {
			ans, err = l.c.Classify(r)
		}
		if err != nil {
			return BatchResult{}, fmt.Errorf("backend: %s: classify %s: %w", l.name, it.ID, err)
		}
		answers[i] = ans
	}
	return BatchResult{Answers: answers}, nil
}

package backend

import (
	"context"
	"errors"
	"testing"

	"nbhd/internal/classify"
	"nbhd/internal/dataset"
	"nbhd/internal/ensemble"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
	"nbhd/internal/yolo"
)

func testItems(t *testing.T, n, size int) []Item {
	t.Helper()
	st, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: (n + 3) / 4, Seed: 1})
	if err != nil {
		t.Fatalf("BuildStudy: %v", err)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	ex, err := st.RenderExamples(idx, size)
	if err != nil {
		t.Fatalf("RenderExamples: %v", err)
	}
	items := make([]Item, n)
	for i := range ex {
		items[i] = Item{ID: ex[i].ID, Image: ex[i].Image}
	}
	return items
}

func testModel(t *testing.T, id vlm.ModelID) *vlm.Model {
	t.Helper()
	p, err := vlm.ProfileFor(id)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vlm.NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fullOptions() Options {
	inds := scene.Indicators()
	return Options{Indicators: inds[:]}
}

func TestLocalMatchesDirectClassify(t *testing.T) {
	m := testModel(t, vlm.Gemini15Pro)
	b, err := NewVLM(m)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Capabilities().PerceivedFeatures {
		t.Error("vlm adapter should support the perception fast path")
	}
	items := testItems(t, 6, 96)
	res, err := b.Classify(context.Background(), BatchRequest{Items: items, Options: fullOptions()})
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if len(res.Answers) != len(items) {
		t.Fatalf("answers = %d vectors", len(res.Answers))
	}
	inds := scene.Indicators()
	for i, it := range items {
		want, err := m.Classify(vlm.Request{Image: it.Image, Indicators: inds[:]})
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if res.Answers[i][k] != want[k] {
				t.Fatalf("item %d indicator %d: adapter %v, direct %v", i, k, res.Answers[i][k], want[k])
			}
		}
	}
}

func TestLocalPerceivedPathMatches(t *testing.T) {
	m := testModel(t, vlm.Claude37)
	b, err := NewVLM(m)
	if err != nil {
		t.Fatal(err)
	}
	items := testItems(t, 4, 96)
	for i := range items {
		feats, err := vlm.Perceive(items[i].Image)
		if err != nil {
			t.Fatal(err)
		}
		items[i].Feats = &feats
	}
	res, err := b.Classify(context.Background(), BatchRequest{Items: items, Options: fullOptions()})
	if err != nil {
		t.Fatal(err)
	}
	inds := scene.Indicators()
	for i, it := range items {
		want, err := m.ClassifyPerceived(vlm.Request{Image: it.Image, Indicators: inds[:]}, *it.Feats)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if res.Answers[i][k] != want[k] {
				t.Fatalf("item %d indicator %d diverges on perceived path", i, k)
			}
		}
	}
}

// plainClassifier has no ClassifyPerceived: the adapter must not claim
// the fast path for it.
type plainClassifier struct{}

func (plainClassifier) Classify(vlm.Request) ([]bool, error) {
	return make([]bool, scene.NumIndicators), nil
}

func TestLocalCapabilitiesWithoutFastPath(t *testing.T) {
	b, err := NewLocal("", plainClassifier{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Capabilities().PerceivedFeatures {
		t.Error("plain classifier must not advertise the perception fast path")
	}
	if b.Name() != "local" {
		t.Errorf("default name = %q", b.Name())
	}
}

func TestCommitteeAdapter(t *testing.T) {
	c, err := ensemble.PaperCommittee()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCommittee(c)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Capabilities().PerceivedFeatures {
		t.Error("committee adapter should support the perception fast path")
	}
	items := testItems(t, 4, 96)
	res, err := b.Classify(context.Background(), BatchRequest{Items: items, Options: fullOptions()})
	if err != nil {
		t.Fatal(err)
	}
	inds := scene.Indicators()
	for i, it := range items {
		want, err := c.Classify(vlm.Request{Image: it.Image, Indicators: inds[:]})
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if res.Answers[i][k] != want[k] {
				t.Fatalf("item %d indicator %d diverges from direct committee", i, k)
			}
		}
	}
}

func TestYOLOAdapterMatchesDetect(t *testing.T) {
	m, err := yolo.New(yolo.Config{InputSize: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewYOLO(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	caps := b.Capabilities()
	if caps.RenderSize != 32 {
		t.Errorf("RenderSize = %d, want the detector's input size 32", caps.RenderSize)
	}
	if caps.MaxConcurrency != 0 {
		t.Errorf("MaxConcurrency = %d, want 0 (stateless inference is unbounded)", caps.MaxConcurrency)
	}
	items := testItems(t, 4, 32)
	res, err := b.Classify(context.Background(), BatchRequest{Items: items, Options: fullOptions()})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		dets, err := m.Detect(it.Image, 0.25, 0.45)
		if err != nil {
			t.Fatal(err)
		}
		var want [scene.NumIndicators]bool
		for _, d := range dets {
			if idx := d.Class.Index(); idx >= 0 {
				want[idx] = true
			}
		}
		for k := 0; k < scene.NumIndicators; k++ {
			if res.Answers[i][k] != want[k] {
				t.Fatalf("item %d indicator %d: adapter %v, direct %v", i, k, res.Answers[i][k], want[k])
			}
		}
	}
}

func TestCNNAdapterMatchesPredict(t *testing.T) {
	m, err := classify.New(classify.Config{InputSize: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCNN(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	caps := b.Capabilities()
	if caps.RenderSize != 32 || caps.MaxConcurrency != 0 {
		t.Errorf("caps = %+v, want RenderSize 32, MaxConcurrency 0 (unbounded)", caps)
	}
	items := testItems(t, 4, 32)
	res, err := b.Classify(context.Background(), BatchRequest{Items: items, Options: fullOptions()})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		probs, err := m.Predict(it.Image)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < scene.NumIndicators; k++ {
			if want := probs[k] >= 0.5; res.Answers[i][k] != want {
				t.Fatalf("item %d indicator %d: adapter %v, direct %v", i, k, res.Answers[i][k], want)
			}
		}
	}
}

// stub is a scriptable backend for composite tests.
type stub struct {
	name string
	caps Capabilities
	ans  []bool
	err  error
}

func (s *stub) Name() string               { return s.name }
func (s *stub) Capabilities() Capabilities { return s.caps }
func (s *stub) Classify(_ context.Context, req BatchRequest) (BatchResult, error) {
	if s.err != nil {
		return BatchResult{}, s.err
	}
	out := make([][]bool, len(req.Items))
	for i := range out {
		out[i] = append([]bool(nil), s.ans...)
	}
	return BatchResult{Answers: out}, nil
}

func boolVec(v bool) []bool {
	out := make([]bool, scene.NumIndicators)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestVotingMajority(t *testing.T) {
	yes := &stub{name: "yes", ans: boolVec(true)}
	no := &stub{name: "no", ans: boolVec(false)}
	v, err := NewVoting("", yes, yes, no)
	if err != nil {
		t.Fatal(err)
	}
	items := testItems(t, 3, 96)
	res, err := v.Classify(context.Background(), BatchRequest{Items: items, Options: fullOptions()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		for k := 0; k < scene.NumIndicators; k++ {
			if !res.Answers[i][k] {
				t.Fatalf("item %d indicator %d: 2-of-3 yes voted false", i, k)
			}
		}
	}
	// Member errors propagate.
	bad := &stub{name: "bad", err: errors.New("boom")}
	v2, err := NewVoting("", yes, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Classify(context.Background(), BatchRequest{Items: items, Options: fullOptions()}); err == nil {
		t.Error("member error swallowed")
	}
}

func TestVotingCapabilityMerge(t *testing.T) {
	a := &stub{name: "a", caps: Capabilities{PerceivedFeatures: true, PreferredBatch: 8, MaxConcurrency: 4}}
	b := &stub{name: "b", caps: Capabilities{PerceivedFeatures: true, PreferredBatch: 2, MaxConcurrency: 0}}
	c := &stub{name: "c", caps: Capabilities{PerceivedFeatures: false, MaxConcurrency: 2}}
	v, err := NewVoting("panel", a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	caps := v.Capabilities()
	if caps.PerceivedFeatures {
		t.Error("one non-perceiving member must disable the fast path")
	}
	if caps.PreferredBatch != 1 {
		t.Errorf("PreferredBatch = %d, want min 1", caps.PreferredBatch)
	}
	if caps.MaxConcurrency != 2 {
		t.Errorf("MaxConcurrency = %d, want min nonzero 2", caps.MaxConcurrency)
	}
	// Render-size disagreement is rejected.
	d := &stub{name: "d", caps: Capabilities{RenderSize: 64}}
	if _, err := NewVoting("", a, d); err == nil {
		t.Error("mixed render sizes accepted")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewLocal("x", nil); err == nil {
		t.Error("nil classifier accepted")
	}
	if _, err := NewVLM(nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewCommittee(nil); err == nil {
		t.Error("nil committee accepted")
	}
	if _, err := NewHTTP(HTTPConfig{}); err == nil {
		t.Error("missing client accepted")
	}
	if _, err := NewYOLO(nil, 0, 0); err == nil {
		t.Error("nil detector accepted")
	}
	m, err := yolo.New(yolo.Config{InputSize: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewYOLO(m, 1.5, 0); err == nil {
		t.Error("bad score threshold accepted")
	}
	if _, err := NewCNN(nil, 0); err == nil {
		t.Error("nil cnn accepted")
	}
	cm, err := classify.New(classify.Config{InputSize: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCNN(cm, -0.2); err == nil {
		t.Error("bad threshold accepted")
	}
	if _, err := NewVoting(""); err == nil {
		t.Error("empty voting accepted")
	}
}

package backend

import (
	"context"
	"fmt"
	"sync"
	"time"

	"nbhd/internal/llmclient"
	"nbhd/internal/vlm"
)

func init() {
	Register("http", func(ctx context.Context, s Spec, env Env) (Backend, error) {
		if s.BaseURL == "" {
			return nil, fmt.Errorf("http spec needs a base_url")
		}
		var enc llmclient.ImageEncoding
		switch s.Encoding {
		case "", "raw_f32":
			// Lossless by default so spec-driven remote runs reproduce
			// in-process reports bit for bit.
			enc = llmclient.EncodeRawF32
		case "png":
			enc = llmclient.EncodePNG
		default:
			return nil, fmt.Errorf("http spec has unknown encoding %q (want raw_f32 or png)", s.Encoding)
		}
		client, err := llmclient.New(llmclient.Config{
			BaseURL:       s.BaseURL,
			APIKey:        s.APIKey,
			Encoding:      enc,
			MaxRetries:    s.MaxRetries,
			BaseBackoff:   time.Duration(s.BaseBackoffMS) * time.Millisecond,
			MaxRetryAfter: time.Duration(s.MaxRetryAfterMS) * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		return NewHTTP(HTTPConfig{
			Client:         client,
			Model:          vlm.ModelID(s.Model),
			MaxInFlight:    s.MaxInFlight,
			PreferredBatch: s.PreferredBatch,
		})
	})
}

// HTTPConfig configures the remote HTTP backend.
type HTTPConfig struct {
	// Client is the llmclient the backend sends completions through; it
	// owns retry, backoff, and Retry-After handling. Required.
	Client *llmclient.Client
	// Model is the served model ID to query. Required.
	Model vlm.ModelID
	// MaxInFlight bounds concurrent HTTP requests across all batches the
	// engine hands this backend; zero defaults to 4.
	MaxInFlight int
	// PreferredBatch is the batch size advertised to the engine; zero
	// defaults to 8.
	PreferredBatch int
}

// HTTP classifies frames through the chat-completions API: each batch
// fans its items out as concurrent requests bounded by a shared
// in-flight semaphore, and the underlying client retries 429/5xx with
// jittered backoff (honoring the server's Retry-After). With the
// client's lossless image encoding, reports are bit-identical to the
// Local backend over the same corpus.
type HTTP struct {
	cfg HTTPConfig
	sem chan struct{}
}

// NewHTTP builds the remote backend.
func NewHTTP(cfg HTTPConfig) (*HTTP, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("backend: http backend needs a client")
	}
	if cfg.Model == "" {
		return nil, fmt.Errorf("backend: http backend needs a model ID")
	}
	if cfg.MaxInFlight < 0 || cfg.PreferredBatch < 0 {
		return nil, fmt.Errorf("backend: negative concurrency/batch (%d, %d)", cfg.MaxInFlight, cfg.PreferredBatch)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.PreferredBatch == 0 {
		cfg.PreferredBatch = 8
	}
	return &HTTP{cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight)}, nil
}

// Name identifies the backend.
func (h *HTTP) Name() string { return "http:" + string(h.cfg.Model) }

// Close releases the adapter's owned resources: the underlying client's
// pooled idle connections. The backend stays usable; Close just returns
// sockets a retired backend would otherwise hold until GC.
func (h *HTTP) Close() error {
	h.cfg.Client.CloseIdle()
	return nil
}

// Capabilities: remote models cannot consume the perception cache (the
// server perceives behind the API); batches amortize engine overhead
// and MaxConcurrency keeps the engine from queuing more batches than
// the in-flight budget can serve.
func (h *HTTP) Capabilities() Capabilities {
	return Capabilities{
		PreferredBatch: h.cfg.PreferredBatch,
		MaxConcurrency: h.cfg.MaxInFlight,
	}
}

// Classify fans the batch out over bounded concurrent requests. The
// first failure cancels the rest of the batch.
func (h *HTTP) Classify(ctx context.Context, req BatchRequest) (BatchResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	opts := llmclient.ClassifyOptions{
		Language:    req.Options.Language,
		Mode:        req.Options.Mode,
		Temperature: req.Options.Temperature,
		TopP:        req.Options.TopP,
		Nonce:       req.Options.Nonce,
	}
	answers := make([][]bool, len(req.Items))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case h.sem <- struct{}{}:
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
			defer func() { <-h.sem }()
			it := &req.Items[i]
			ans, err := h.cfg.Client.Classify(ctx, h.cfg.Model, it.Image, req.Options.Indicators, opts)
			if err != nil {
				fail(fmt.Errorf("backend: %s: classify %s: %w", h.Name(), it.ID, err))
				return
			}
			answers[i] = ans
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return BatchResult{}, firstErr
	}
	return BatchResult{Answers: answers}, nil
}

package backend

import (
	"context"
	"fmt"
	"sync"

	"nbhd/internal/classify"
)

// CNN adapts the multi-label scene-classification baseline (§IV-B3) to
// the Backend interface: per-indicator presence probabilities from the
// compact CNN, thresholded into Yes/No answers.
type CNN struct {
	model     *classify.Model
	threshold float64

	// Forward passes cache layer inputs; serialize them (see YOLO).
	mu sync.Mutex
}

// NewCNN wraps a trained classifier. A zero threshold defaults to 0.5.
func NewCNN(m *classify.Model, threshold float64) (*CNN, error) {
	if m == nil {
		return nil, fmt.Errorf("backend: nil classifier model")
	}
	if threshold == 0 {
		threshold = 0.5
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("backend: threshold %f outside (0,1)", threshold)
	}
	return &CNN{model: m, threshold: threshold}, nil
}

// Name identifies the backend.
func (c *CNN) Name() string { return "cnn" }

// Capabilities: the CNN needs frames at its own input resolution and
// must run single-file.
func (c *CNN) Capabilities() Capabilities {
	return Capabilities{
		PreferredBatch: 16,
		MaxConcurrency: 1,
		RenderSize:     c.model.InputSize(),
	}
}

// Classify predicts presence probabilities per frame and thresholds
// them.
func (c *CNN) Classify(ctx context.Context, req BatchRequest) (BatchResult, error) {
	answers := make([][]bool, len(req.Items))
	for i := range req.Items {
		if err := ctx.Err(); err != nil {
			return BatchResult{}, err
		}
		it := &req.Items[i]
		c.mu.Lock()
		probs, err := c.model.Predict(it.Image)
		c.mu.Unlock()
		if err != nil {
			return BatchResult{}, fmt.Errorf("backend: cnn: predict %s: %w", it.ID, err)
		}
		ans := make([]bool, len(req.Options.Indicators))
		for k, ind := range req.Options.Indicators {
			if idx := ind.Index(); idx >= 0 {
				ans[k] = probs[idx] >= c.threshold
			}
		}
		answers[i] = ans
	}
	return BatchResult{Answers: answers}, nil
}

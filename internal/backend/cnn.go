package backend

import (
	"context"
	"fmt"

	"nbhd/internal/classify"
	"nbhd/internal/render"
)

func init() {
	Register("cnn", func(ctx context.Context, s Spec, env Env) (Backend, error) {
		if env == nil {
			return nil, fmt.Errorf("cnn spec needs an environment to train in (use OpenWith)")
		}
		epochs := s.Epochs
		if epochs == 0 {
			epochs = 20
		}
		m, err := env.TrainSceneCNN(ctx, epochs)
		if err != nil {
			return nil, err
		}
		if s.Quantized {
			if err := m.SetQuantized(true); err != nil {
				return nil, err
			}
		}
		return NewCNN(m, s.Threshold)
	})
}

// CNN adapts the multi-label scene-classification baseline (§IV-B3) to
// the Backend interface: per-indicator presence probabilities from the
// compact CNN, thresholded into Yes/No answers.
//
// Prediction runs on the model's stateless inference path, so the
// adapter is reentrant (see YOLO); each Classify call is one batched
// forward pass.
type CNN struct {
	model     *classify.Model
	threshold float64
}

// NewCNN wraps a trained classifier. A zero threshold defaults to 0.5.
func NewCNN(m *classify.Model, threshold float64) (*CNN, error) {
	if m == nil {
		return nil, fmt.Errorf("backend: nil classifier model")
	}
	if threshold == 0 {
		threshold = 0.5
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("backend: threshold %f outside (0,1)", threshold)
	}
	return &CNN{model: m, threshold: threshold}, nil
}

// Name identifies the backend.
func (c *CNN) Name() string { return "cnn" }

// Capabilities: the CNN needs frames at its own input resolution and
// tolerates unbounded concurrent Classify calls (stateless inference).
func (c *CNN) Capabilities() Capabilities {
	return Capabilities{
		PreferredBatch: 16,
		RenderSize:     c.model.InputSize(),
		Quantized:      c.model.Quantized(),
	}
}

// ComputeStats exposes the classifier's f32-vs-int8 dispatch counters
// for the serve gateway's /metricsz.
func (c *CNN) ComputeStats() ComputeStats {
	f32, quant := c.model.InferCounts()
	return ComputeStats{F32Infers: f32, QuantizedInfers: quant}
}

// Classify predicts presence probabilities for every frame with one
// batched forward pass and thresholds them.
func (c *CNN) Classify(ctx context.Context, req BatchRequest) (BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}
	if len(req.Items) == 0 {
		return BatchResult{Answers: [][]bool{}}, nil
	}
	imgs := make([]*render.Image, len(req.Items))
	for i := range req.Items {
		imgs[i] = req.Items[i].Image
	}
	probs, err := c.model.PredictBatch(imgs)
	if err != nil {
		return BatchResult{}, fmt.Errorf("backend: cnn: predict batch starting at %s: %w", req.Items[0].ID, err)
	}
	answers := make([][]bool, len(req.Items))
	for i := range probs {
		ans := make([]bool, len(req.Options.Indicators))
		for k, ind := range req.Options.Indicators {
			if idx := ind.Index(); idx >= 0 {
				ans[k] = probs[i][idx] >= c.threshold
			}
		}
		answers[i] = ans
	}
	return BatchResult{Answers: answers}, nil
}

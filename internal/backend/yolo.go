package backend

import (
	"context"
	"fmt"

	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/yolo"
)

func init() {
	Register("yolo", func(ctx context.Context, s Spec, env Env) (Backend, error) {
		if env == nil {
			return nil, fmt.Errorf("yolo spec needs an environment to train in (use OpenWith)")
		}
		epochs := s.Epochs
		if epochs == 0 {
			epochs = 20
		}
		m, err := env.TrainDetector(ctx, epochs)
		if err != nil {
			return nil, err
		}
		if s.Quantized {
			if err := m.SetQuantized(true); err != nil {
				return nil, err
			}
		}
		return NewYOLO(m, s.ScoreThresh, s.NMSIoU)
	})
}

// YOLO adapts the trained grid detector to the Backend interface by
// deriving image-level indicator presence from its detections: an
// indicator is predicted present when any detection of that class clears
// the score threshold — the comparison the paper's Fig. 5 makes between
// YOLOv11 and the LLMs.
//
// Detection runs on the model's stateless inference path, so the adapter
// is fully reentrant: the engine fans concurrent Classify calls across
// its worker pool, and each call is one batched forward pass over the
// whole request.
type YOLO struct {
	model       *yolo.Model
	scoreThresh float64
	nmsIoU      float64
}

// NewYOLO wraps a trained detector. Zero thresholds default to the
// paper's 0.25 score and 0.45 NMS IoU.
func NewYOLO(m *yolo.Model, scoreThresh, nmsIoU float64) (*YOLO, error) {
	if m == nil {
		return nil, fmt.Errorf("backend: nil detector")
	}
	if scoreThresh == 0 {
		scoreThresh = 0.25
	}
	if nmsIoU == 0 {
		nmsIoU = 0.45
	}
	if scoreThresh <= 0 || scoreThresh >= 1 || nmsIoU <= 0 || nmsIoU >= 1 {
		return nil, fmt.Errorf("backend: thresholds (%f, %f) outside (0,1)", scoreThresh, nmsIoU)
	}
	return &YOLO{model: m, scoreThresh: scoreThresh, nmsIoU: nmsIoU}, nil
}

// Name identifies the backend.
func (y *YOLO) Name() string { return "yolo" }

// Capabilities: the detector needs frames at its own input resolution,
// does not consume perception features, and — because inference is
// stateless and reentrant — tolerates unbounded concurrent Classify
// calls.
func (y *YOLO) Capabilities() Capabilities {
	return Capabilities{
		PreferredBatch: 16,
		RenderSize:     y.model.InputSize(),
		Quantized:      y.model.Quantized(),
	}
}

// ComputeStats exposes the detector's f32-vs-int8 dispatch counters for
// the serve gateway's /metricsz.
func (y *YOLO) ComputeStats() ComputeStats {
	f32, quant := y.model.InferCounts()
	return ComputeStats{F32Infers: f32, QuantizedInfers: quant}
}

// Classify detects objects in every frame with one batched forward pass
// and reports per-indicator presence.
func (y *YOLO) Classify(ctx context.Context, req BatchRequest) (BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}
	if len(req.Items) == 0 {
		return BatchResult{Answers: [][]bool{}}, nil
	}
	imgs := make([]*render.Image, len(req.Items))
	for i := range req.Items {
		imgs[i] = req.Items[i].Image
	}
	batchDets, err := y.model.DetectBatch(imgs, y.scoreThresh, y.nmsIoU)
	if err != nil {
		return BatchResult{}, fmt.Errorf("backend: yolo: detect batch starting at %s: %w", req.Items[0].ID, err)
	}
	answers := make([][]bool, len(req.Items))
	for i, dets := range batchDets {
		var present [scene.NumIndicators]bool
		for _, d := range dets {
			if idx := d.Class.Index(); idx >= 0 {
				present[idx] = true
			}
		}
		ans := make([]bool, len(req.Options.Indicators))
		for k, ind := range req.Options.Indicators {
			if idx := ind.Index(); idx >= 0 {
				ans[k] = present[idx]
			}
		}
		answers[i] = ans
	}
	return BatchResult{Answers: answers}, nil
}

package backend

import (
	"context"
	"fmt"
	"sync"

	"nbhd/internal/scene"
	"nbhd/internal/yolo"
)

// YOLO adapts the trained grid detector to the Backend interface by
// deriving image-level indicator presence from its detections: an
// indicator is predicted present when any detection of that class clears
// the score threshold — the comparison the paper's Fig. 5 makes between
// YOLOv11 and the LLMs.
type YOLO struct {
	model       *yolo.Model
	scoreThresh float64
	nmsIoU      float64

	// The NN forward pass caches layer inputs, so Detect is not safe to
	// call concurrently on one model; the mutex makes the adapter safe
	// regardless of how it is driven (the capability hint keeps the
	// engine from queuing on it).
	mu sync.Mutex
}

// NewYOLO wraps a trained detector. Zero thresholds default to the
// paper's 0.25 score and 0.45 NMS IoU.
func NewYOLO(m *yolo.Model, scoreThresh, nmsIoU float64) (*YOLO, error) {
	if m == nil {
		return nil, fmt.Errorf("backend: nil detector")
	}
	if scoreThresh == 0 {
		scoreThresh = 0.25
	}
	if nmsIoU == 0 {
		nmsIoU = 0.45
	}
	if scoreThresh <= 0 || scoreThresh >= 1 || nmsIoU <= 0 || nmsIoU >= 1 {
		return nil, fmt.Errorf("backend: thresholds (%f, %f) outside (0,1)", scoreThresh, nmsIoU)
	}
	return &YOLO{model: m, scoreThresh: scoreThresh, nmsIoU: nmsIoU}, nil
}

// Name identifies the backend.
func (y *YOLO) Name() string { return "yolo" }

// Capabilities: the detector needs frames at its own input resolution,
// does not consume perception features, and must run single-file.
func (y *YOLO) Capabilities() Capabilities {
	return Capabilities{
		PreferredBatch: 16,
		MaxConcurrency: 1,
		RenderSize:     y.model.InputSize(),
	}
}

// Classify detects objects in each frame and reports per-indicator
// presence.
func (y *YOLO) Classify(ctx context.Context, req BatchRequest) (BatchResult, error) {
	answers := make([][]bool, len(req.Items))
	for i := range req.Items {
		if err := ctx.Err(); err != nil {
			return BatchResult{}, err
		}
		it := &req.Items[i]
		y.mu.Lock()
		dets, err := y.model.Detect(it.Image, y.scoreThresh, y.nmsIoU)
		y.mu.Unlock()
		if err != nil {
			return BatchResult{}, fmt.Errorf("backend: yolo: detect %s: %w", it.ID, err)
		}
		var present [scene.NumIndicators]bool
		for _, d := range dets {
			if idx := d.Class.Index(); idx >= 0 {
				present[idx] = true
			}
		}
		ans := make([]bool, len(req.Options.Indicators))
		for k, ind := range req.Options.Indicators {
			if idx := ind.Index(); idx >= 0 {
				ans[k] = present[idx]
			}
		}
		answers[i] = ans
	}
	return BatchResult{Answers: answers}, nil
}

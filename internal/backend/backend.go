// Package backend is the pluggable classifier-backend layer beneath the
// evaluation engine. Every classifier family the paper compares — the
// builtin simulated vision LLMs, majority-voting committees, remote
// models behind the chat-completions HTTP API, the YOLO-style detector's
// presence predictions, and the scene-classification CNN baseline — is
// adapted to one Backend interface, so a single engine (core.Evaluator)
// drives them all over the same shared render and perception caches and
// merges their confusion reports through the same path.
//
// A Backend classifies frames in batches and advertises capability hints
// the engine uses to shape the sweep: whether it consumes precomputed
// perception features, the batch size it prefers, how many concurrent
// Classify calls it tolerates, and the render resolution it needs.
package backend

import (
	"context"
	"io"

	"nbhd/internal/prompt"
	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

// Item is one frame in a batch classification request.
type Item struct {
	// ID identifies the frame (for error messages and tracing).
	ID string
	// Image is the rendered frame; backends must treat the pixels as
	// read-only (cached images are shared across sweeps).
	Image *render.Image
	// Feats holds precomputed perception features. The engine fills it
	// only for backends whose Capabilities report PerceivedFeatures;
	// otherwise it is nil.
	Feats *vlm.Features
}

// Options are the request knobs shared by every item in a batch.
type Options struct {
	// Indicators are the classes asked about, in answer order.
	Indicators []scene.Indicator
	// Language of the prompt; zero defaults to English.
	Language prompt.Language
	// Mode is parallel or sequential prompting; zero defaults to
	// parallel.
	Mode prompt.Mode
	// Temperature and TopP forward to the models (zero = defaults).
	Temperature, TopP float64
	// Nonce decorrelates repeated identical requests.
	Nonce int64
}

// BatchRequest asks a backend to classify a batch of frames under one
// set of options.
type BatchRequest struct {
	Items   []Item
	Options Options
}

// BatchResult is a backend's answer to a BatchRequest.
type BatchResult struct {
	// Answers[i] holds Items[i]'s per-indicator answers, aligned with
	// Options.Indicators.
	Answers [][]bool
}

// Capabilities are the hints a backend gives the engine about how it
// wants to be driven.
type Capabilities struct {
	// PerceivedFeatures reports whether the backend consumes the shared
	// perception cache (Item.Feats). Only in-process classifiers with a
	// ClassifyPerceived fast path support this.
	PerceivedFeatures bool
	// PreferredBatch is the batch size the backend wants per Classify
	// call; values < 1 mean one frame per call.
	PreferredBatch int
	// MaxConcurrency caps concurrent Classify calls; zero or negative
	// means unbounded. Every in-repo backend is now reentrant (the NN
	// models gained a stateless inference path), so only remote adapters
	// with connection budgets bound this.
	MaxConcurrency int
	// RenderSize is the square frame resolution the backend requires;
	// zero means the engine's default (the LLM render size).
	RenderSize int
	// Quantized reports that the backend's model runs the int8 inference
	// path instead of f32 — surfaced so reports and the serve gateway can
	// attribute throughput and accuracy drift to the quantized kernels.
	Quantized bool
}

// Backend classifies batches of street-view frames.
type Backend interface {
	// Name identifies the backend in logs, reports, and errors.
	Name() string
	// Capabilities returns the backend's driving hints; it must be
	// constant over the backend's lifetime.
	Capabilities() Capabilities
	// Classify answers the batch. Implementations must honor context
	// cancellation and return answer vectors aligned with
	// req.Options.Indicators for every item.
	Classify(ctx context.Context, req BatchRequest) (BatchResult, error)
}

// ComputeStats counts a backend's model-level inference dispatches,
// split by numeric path. The serve gateway's /metricsz merges these
// per-backend counters with the process-wide tensor kernel counters.
type ComputeStats struct {
	// F32Infers and QuantizedInfers count forward passes dispatched to
	// the float32 and int8 paths respectively.
	F32Infers       uint64 `json:"f32_infers"`
	QuantizedInfers uint64 `json:"quantized_infers"`
}

// ComputeStatser is the optional interface backends with an in-process
// neural model implement to expose their dispatch counters. Stats
// returns a snapshot; counters only grow over the backend's lifetime.
type ComputeStatser interface {
	ComputeStats() ComputeStats
}

// StatsOf snapshots a backend's compute counters, reporting ok=false
// for backends without an in-process model.
func StatsOf(b Backend) (ComputeStats, bool) {
	if s, ok := b.(ComputeStatser); ok {
		return s.ComputeStats(), true
	}
	return ComputeStats{}, false
}

// Close releases a backend's owned resources. Adapters that hold
// resources beyond process memory — today the HTTP adapter's pooled
// idle connections, and Voting composites over such members —
// implement io.Closer; Close forwards to it and is a no-op for every
// other backend. Registry consumers (the experiment runner, the serve
// gateway's warm pool) call it when they retire a backend they opened.
func Close(b Backend) error {
	if c, ok := b.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

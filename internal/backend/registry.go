package backend

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"nbhd/internal/classify"
	"nbhd/internal/yolo"
)

// Spec declaratively describes a backend so experiments can name their
// classifiers as data instead of constructing them in code. The struct
// is flat and JSON-round-trippable: every kind reads the fields it
// needs and ignores the rest; field validation lives in the factories.
//
// Registered kinds and their fields:
//
//	vlm        Model
//	committee  Models
//	http       Model, BaseURL, APIKey, MaxInFlight, PreferredBatch, Encoding
//	yolo       Epochs, ScoreThresh, NMSIoU, Quantized   (needs an Env to train)
//	cnn        Epochs, Threshold, Quantized             (needs an Env to train)
//	voting     Name, Members
type Spec struct {
	// Kind selects the registered factory ("vlm", "http", "voting", ...).
	Kind string `json:"kind"`
	// Model is the model ID for the vlm and http kinds.
	Model string `json:"model,omitempty"`
	// Models lists the member model IDs for the committee kind.
	Models []string `json:"models,omitempty"`
	// BaseURL and APIKey configure the http kind's client.
	BaseURL string `json:"base_url,omitempty"`
	APIKey  string `json:"api_key,omitempty"`
	// Encoding selects the http kind's image wire format: "raw_f32"
	// (default; lossless, reports bit-identical to in-process) or "png".
	Encoding string `json:"encoding,omitempty"`
	// MaxInFlight and PreferredBatch tune the http kind; zeros take the
	// adapter defaults.
	MaxInFlight    int `json:"max_in_flight,omitempty"`
	PreferredBatch int `json:"preferred_batch,omitempty"`
	// MaxRetries, BaseBackoffMS, and MaxRetryAfterMS tune the http
	// kind's retry policy (attempts after a retryable failure, first
	// backoff delay, and the cap on honoring the server's Retry-After,
	// both in milliseconds); zeros take the client defaults.
	MaxRetries      int `json:"max_retries,omitempty"`
	BaseBackoffMS   int `json:"base_backoff_ms,omitempty"`
	MaxRetryAfterMS int `json:"max_retry_after_ms,omitempty"`
	// Epochs is the training budget for the yolo and cnn kinds; zero
	// defaults to the paper's 20.
	Epochs int `json:"epochs,omitempty"`
	// ScoreThresh and NMSIoU tune the yolo kind; zeros take the paper's
	// 0.25 and 0.45.
	ScoreThresh float64 `json:"score_thresh,omitempty"`
	NMSIoU      float64 `json:"nms_iou,omitempty"`
	// Threshold is the cnn kind's presence cutoff; zero defaults to 0.5.
	Threshold float64 `json:"threshold,omitempty"`
	// Quantized switches the yolo and cnn kinds to int8 inference after
	// training: weights are quantized once, activations per batch. See
	// docs/QUANTIZATION.md for the scheme and its accuracy envelope.
	Quantized bool `json:"quantized,omitempty"`
	// Name labels the voting kind in reports; empty defaults to "voting".
	Name string `json:"name,omitempty"`
	// Members are the voting kind's member backend specs.
	Members []Spec `json:"members,omitempty"`
}

// Env gives spec-opened backends access to the run environment they are
// being opened into. The supervised kinds (yolo, cnn) use it to train
// their model on the run's corpus split; stateless kinds ignore it.
// Open passes a nil Env, under which those kinds fail with a clear
// error — an experiment runner supplies a real one.
type Env interface {
	// TrainDetector trains the YOLO-style detector baseline on the
	// environment's corpus split for the given number of epochs.
	TrainDetector(ctx context.Context, epochs int) (*yolo.Model, error)
	// TrainSceneCNN trains the scene-classification CNN baseline on the
	// same split.
	TrainSceneCNN(ctx context.Context, epochs int) (*classify.Model, error)
}

// Factory constructs a backend from its declarative spec.
type Factory func(ctx context.Context, s Spec, env Env) (Backend, error)

var registry = struct {
	sync.RWMutex
	kinds map[string]Factory
}{kinds: make(map[string]Factory)}

// Register makes a backend kind openable by name. It panics if the kind
// is empty, the factory is nil, or the kind is already registered —
// registration is a package-wiring error, not a runtime condition.
func Register(kind string, f Factory) {
	if kind == "" {
		panic("backend: Register with empty kind")
	}
	if f == nil {
		panic("backend: Register with nil factory for kind " + kind)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.kinds[kind]; dup {
		panic("backend: Register called twice for kind " + kind)
	}
	registry.kinds[kind] = f
}

// Kinds returns the registered backend kinds, sorted.
func Kinds() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.kinds))
	for k := range registry.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Open constructs a backend from its spec using the registered factory
// for the spec's kind. Kinds that must train a model on a corpus (yolo,
// cnn) need OpenWith and an Env.
func Open(ctx context.Context, s Spec) (Backend, error) {
	return OpenWith(ctx, s, nil)
}

// OpenWith is Open with an environment for kinds that need one.
func OpenWith(ctx context.Context, s Spec, env Env) (Backend, error) {
	if s.Kind == "" {
		return nil, fmt.Errorf("backend: spec has no kind (registered: %s)", strings.Join(Kinds(), ", "))
	}
	registry.RLock()
	f, ok := registry.kinds[s.Kind]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown kind %q (registered: %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	b, err := f(ctx, s, env)
	if err != nil {
		return nil, fmt.Errorf("backend: open %s: %w", s.Kind, err)
	}
	return b, nil
}

package backend

import (
	"context"
	"sync"
	"testing"

	"nbhd/internal/classify"
	"nbhd/internal/yolo"
)

// TestNNBackendsConcurrentClassify drives many concurrent Classify calls
// through one YOLO backend and one CNN backend at once — under -race
// this is the proof that the NN models' stateless inference path lets
// the evaluation engine fan detector/classifier inference across its
// worker pool without a serializing mutex. Answers must also be
// identical across every concurrent call.
func TestNNBackendsConcurrentClassify(t *testing.T) {
	ym, err := yolo.New(yolo.Config{InputSize: 32, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	yb, err := NewYOLO(ym, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := classify.New(classify.Config{InputSize: 32, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewCNN(cm, 0)
	if err != nil {
		t.Fatal(err)
	}
	items := testItems(t, 8, 32)
	req := BatchRequest{Items: items, Options: fullOptions()}
	ctx := context.Background()

	baseline := map[string]BatchResult{}
	for _, b := range []Backend{yb, cb} {
		res, err := b.Classify(ctx, req)
		if err != nil {
			t.Fatalf("%s baseline: %v", b.Name(), err)
		}
		baseline[b.Name()] = res
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		for _, b := range []Backend{yb, cb} {
			wg.Add(1)
			go func(b Backend) {
				defer wg.Done()
				for iter := 0; iter < 5; iter++ {
					res, err := b.Classify(ctx, req)
					if err != nil {
						t.Errorf("%s: %v", b.Name(), err)
						return
					}
					want := baseline[b.Name()]
					for i := range want.Answers {
						for k := range want.Answers[i] {
							if res.Answers[i][k] != want.Answers[i][k] {
								t.Errorf("%s: concurrent answer diverged at item %d indicator %d", b.Name(), i, k)
								return
							}
						}
					}
				}
			}(b)
		}
	}
	wg.Wait()
}

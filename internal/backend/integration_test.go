package backend_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"nbhd/internal/backend"
	"nbhd/internal/core"
	"nbhd/internal/ensemble"
	"nbhd/internal/llmclient"
	"nbhd/internal/llmserve"
	"nbhd/internal/prompt"
	"nbhd/internal/vlm"
)

// The acceptance bar for the backend layer: for deterministic settings,
// sweeping a model through the HTTP stack — llmserve in-process via
// httptest, llmclient with the lossless image encoding — produces a
// ClassReport bit-identical to sweeping the same model in-process, and
// stays identical when the server injects 429s and the client retries.

func integrationPipeline(t *testing.T, coords int) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(core.Config{Coordinates: coords, Seed: 5})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	return p
}

func startLLMServer(t *testing.T, cfg llmserve.Config) *httptest.Server {
	t.Helper()
	srv, err := llmserve.NewBuiltin(cfg)
	if err != nil {
		t.Fatalf("NewBuiltin: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func localVLM(t *testing.T, id vlm.ModelID) backend.Backend {
	t.Helper()
	p, err := vlm.ProfileFor(id)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vlm.NewModel(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := backend.NewVLM(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func httpVLM(t *testing.T, client *llmclient.Client, id vlm.ModelID) backend.Backend {
	t.Helper()
	b, err := backend.NewHTTP(backend.HTTPConfig{Client: client, Model: id, MaxInFlight: 6})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHTTPBackendBitIdenticalToLocal(t *testing.T) {
	pipe := integrationPipeline(t, 8)
	ts := startLLMServer(t, llmserve.Config{})
	client, err := llmclient.New(llmclient.Config{
		BaseURL:     ts.URL,
		BaseBackoff: time.Millisecond,
		Encoding:    llmclient.EncodeRawF32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := pipe.NewEvaluator(core.EvalConfig{Workers: 4})
	ctx := context.Background()
	cases := []struct {
		name string
		id   vlm.ModelID
		opts core.LLMOptions
	}{
		{"gemini-defaults", vlm.Gemini15Pro, core.LLMOptions{}},
		{"claude-sequential-spanish", vlm.Claude37, core.LLMOptions{Language: prompt.Spanish, Mode: prompt.Sequential}},
		{"grok-frame-limit", vlm.Grok2, core.LLMOptions{FrameLimit: 13}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ev.EvaluateBackend(ctx, localVLM(t, tc.id), tc.opts)
			if err != nil {
				t.Fatalf("local sweep: %v", err)
			}
			got, err := ev.EvaluateBackend(ctx, httpVLM(t, client, tc.id), tc.opts)
			if err != nil {
				t.Fatalf("http sweep: %v", err)
			}
			if *got != *want {
				t.Errorf("HTTP report diverges from local\ngot:  %+v\nwant: %+v", *got, *want)
			}
		})
	}
}

func TestHTTPBackendBitIdenticalUnderInjected429s(t *testing.T) {
	pipe := integrationPipeline(t, 6)
	// Heavy chaos: 30% 429s and 10% 500s. The server advertises its
	// default Retry-After: 1; the client's MaxRetryAfter caps the honored
	// delay so the test absorbs dozens of retries without real sleeps —
	// and none of it may change a single confusion count.
	ts := startLLMServer(t, llmserve.Config{
		Failures: llmserve.FailureConfig{Prob429: 0.3, Prob500: 0.1, Seed: 11},
	})
	client, err := llmclient.New(llmclient.Config{
		BaseURL:       ts.URL,
		MaxRetries:    25,
		BaseBackoff:   time.Millisecond,
		MaxRetryAfter: time.Millisecond,
		Encoding:      llmclient.EncodeRawF32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := pipe.NewEvaluator(core.EvalConfig{Workers: 4})
	ctx := context.Background()
	want, err := ev.EvaluateBackend(ctx, localVLM(t, vlm.ChatGPT4oMini), core.LLMOptions{})
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	got, err := ev.EvaluateBackend(ctx, httpVLM(t, client, vlm.ChatGPT4oMini), core.LLMOptions{})
	if err != nil {
		t.Fatalf("http sweep under chaos: %v", err)
	}
	if *got != *want {
		t.Errorf("chaos-mode HTTP report diverges from local\ngot:  %+v\nwant: %+v", *got, *want)
	}
}

// TestRemoteVotingMatchesLocalCommittee: the composite voting backend
// over three HTTP members reproduces the in-process committee exactly —
// the paper's majority-voting step, fully remote.
func TestRemoteVotingMatchesLocalCommittee(t *testing.T) {
	pipe := integrationPipeline(t, 6)
	ts := startLLMServer(t, llmserve.Config{})
	client, err := llmclient.New(llmclient.Config{
		BaseURL:     ts.URL,
		BaseBackoff: time.Millisecond,
		Encoding:    llmclient.EncodeRawF32,
	})
	if err != nil {
		t.Fatal(err)
	}
	committee, err := ensemble.PaperCommittee()
	if err != nil {
		t.Fatal(err)
	}
	local, err := backend.NewCommittee(committee)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]backend.Backend, 0, committee.Size())
	for _, id := range committee.Members() {
		members = append(members, httpVLM(t, client, id))
	}
	remote, err := backend.NewVoting("http-committee", members...)
	if err != nil {
		t.Fatal(err)
	}
	ev := pipe.NewEvaluator(core.EvalConfig{Workers: 4})
	ctx := context.Background()
	want, err := ev.EvaluateBackend(ctx, local, core.LLMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.EvaluateBackend(ctx, remote, core.LLMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("remote voting diverges from local committee\ngot:  %+v\nwant: %+v", *got, *want)
	}
}

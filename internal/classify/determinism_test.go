package classify

import (
	"fmt"
	"testing"

	"nbhd/internal/dataset"
	"nbhd/internal/render"
)

// goldenLosses is the SEED implementation's per-epoch loss curve for the
// configuration below (see the yolo package's determinism test for the
// guarantee this pins down).
var goldenLosses = []string{
	"0.86483149088674394",
	"0.60238251675717791",
	"0.55855147162306951",
	"0.51782822769592862",
}

// goldenProbs is the seed model's presence probabilities on the first
// frame after the run above.
var goldenProbs = []string{
	"0.2663024365901947",
	"0.34135210514068604",
	"0.46807494759559631",
	"0.32183963060379028",
	"0.1160975843667984",
	"0.077276386320590973",
}

func determinismExamples(t *testing.T) []dataset.Example {
	t.Helper()
	st, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: 6, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 24)
	for i := range idx {
		idx[i] = i
	}
	ex, err := st.RenderExamples(idx, 32)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestTrainingLossCurveUnchangedFromSeed trains the scene CNN on a fixed
// corpus and asserts the loss curve and resulting predictions are
// bit-identical to the seed implementation.
func TestTrainingLossCurveUnchangedFromSeed(t *testing.T) {
	ex := determinismExamples(t)
	m, err := New(Config{InputSize: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	err = m.Train(ex, TrainConfig{
		Epochs:    4,
		BatchSize: 8,
		Seed:      13,
		Progress:  func(_ int, loss float64) { losses = append(losses, loss) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != len(goldenLosses) {
		t.Fatalf("got %d epoch losses, want %d", len(losses), len(goldenLosses))
	}
	for i, l := range losses {
		if got := fmt.Sprintf("%.17g", l); got != goldenLosses[i] {
			t.Errorf("epoch %d loss = %s, seed produced %s", i, got, goldenLosses[i])
		}
	}
	probs, err := m.Predict(ex[0].Image)
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range probs {
		if got := fmt.Sprintf("%.17g", p); got != goldenProbs[k] {
			t.Errorf("prob %d = %s, seed produced %s", k, got, goldenProbs[k])
		}
	}
}

// TestPredictBatchMatchesPredict asserts batched prediction is
// bit-identical to the per-image path.
func TestPredictBatchMatchesPredict(t *testing.T) {
	ex := determinismExamples(t)
	m, err := New(Config{InputSize: 32, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(ex[:16], TrainConfig{Epochs: 2, BatchSize: 8, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	imgs := make([]*render.Image, 8)
	for i := range imgs {
		imgs[i] = ex[i].Image
	}
	batched, err := m.PredictBatch(imgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range imgs {
		single, err := m.Predict(img)
		if err != nil {
			t.Fatal(err)
		}
		for k := range single {
			if single[k] != batched[i][k] {
				t.Fatalf("image %d indicator %d: batched %g vs single %g", i, k, batched[i][k], single[k])
			}
		}
	}
}

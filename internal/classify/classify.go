// Package classify implements the multi-label scene-classification
// baseline the paper compares against (§IV-B3): prior work (Keralis
// et al.'s VGG-16, Nguyen et al.'s VGG-19, Alirezaei et al.'s ResNet-18)
// predicts image-level indicator presence directly, without localization.
// The model here is a compact CNN with the same backbone family as the
// detector but a presence head — enough to reproduce the paper's finding
// that the detection-based pipeline beats scene classification.
package classify

import (
	"fmt"
	"math/rand"

	"nbhd/internal/dataset"
	"nbhd/internal/metrics"
	"nbhd/internal/nn"
	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/tensor"
)

// Config describes the classifier architecture.
type Config struct {
	// InputSize is the square input resolution; must be divisible by 8.
	// Zero defaults to 64.
	InputSize int
	// Channels are the three backbone stage widths; zero defaults to
	// [8, 16, 32].
	Channels [3]int
	// Seed initializes weights.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.InputSize == 0 {
		c.InputSize = 64
	}
	if c.Channels == [3]int{} {
		c.Channels = [3]int{8, 16, 32}
	}
	return c
}

func (c Config) validate() error {
	if c.InputSize < 16 || c.InputSize%8 != 0 {
		return fmt.Errorf("classify: input size %d must be >= 16 and divisible by 8", c.InputSize)
	}
	for i, ch := range c.Channels {
		if ch <= 0 {
			return fmt.Errorf("classify: stage %d channels %d must be positive", i, ch)
		}
	}
	return nil
}

// Model is the multi-label presence classifier.
type Model struct {
	cfg Config
	net *nn.Sequential
}

// New builds a randomly initialized classifier.
func New(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var layers []nn.Layer
	in := render.Channels
	for _, out := range cfg.Channels {
		conv, err := nn.NewConv2D(in, out, 3, 1, 1, rng)
		if err != nil {
			return nil, fmt.Errorf("classify: %w", err)
		}
		relu, err := nn.NewLeakyReLU(0.1)
		if err != nil {
			return nil, fmt.Errorf("classify: %w", err)
		}
		pool, err := nn.NewMaxPool2D(2, 0)
		if err != nil {
			return nil, fmt.Errorf("classify: %w", err)
		}
		layers = append(layers, conv, relu, pool)
		in = out
	}
	grid := cfg.InputSize / 8
	head, err := nn.NewLinear(in*grid*grid, scene.NumIndicators, rng)
	if err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	layers = append(layers, head)
	return &Model{cfg: cfg, net: nn.NewSequential(layers...)}, nil
}

// InputSize returns the expected input resolution.
func (m *Model) InputSize() int { return m.cfg.InputSize }

// ParamCount returns the number of trainable scalars.
func (m *Model) ParamCount() int { return m.net.ParamCount() }

// batchTensors packs examples into input and target tensors.
func (m *Model) batchTensors(batch []dataset.Example) (*tensor.Tensor, *tensor.Tensor, error) {
	s := m.cfg.InputSize
	x := tensor.MustNew(len(batch), render.Channels, s, s)
	y := tensor.MustNew(len(batch), scene.NumIndicators)
	per := render.Channels * s * s
	for i := range batch {
		img := batch[i].Image
		if img.W != s || img.H != s {
			return nil, nil, fmt.Errorf("classify: image %d is %dx%d, model expects %dx%d", i, img.W, img.H, s, s)
		}
		copy(x.Data[i*per:(i+1)*per], img.Pix)
		pres := batch[i].Presence()
		for k := 0; k < scene.NumIndicators; k++ {
			if pres[k] {
				y.Set(1, i, k)
			}
		}
	}
	return x, y, nil
}

// TrainConfig holds the classifier's training hyperparameters.
type TrainConfig struct {
	// Epochs defaults to 20 (matching the detector protocol).
	Epochs int
	// BatchSize defaults to 16.
	BatchSize int
	// LearningRate defaults to 2e-3 with Adam.
	LearningRate float64
	// Seed drives shuffling.
	Seed int64
	// Progress receives per-epoch losses.
	Progress func(epoch int, loss float64)
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LearningRate == 0 {
		c.LearningRate = 2e-3
	}
	return c
}

// Train fits the classifier with multi-label binary cross entropy.
func (m *Model) Train(examples []dataset.Example, cfg TrainConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Epochs < 1 || cfg.BatchSize < 1 || cfg.LearningRate <= 0 {
		return fmt.Errorf("classify: invalid training config %+v", cfg)
	}
	if len(examples) == 0 {
		return fmt.Errorf("classify: no training examples")
	}
	opt, err := nn.NewAdam(cfg.LearningRate, 0, 0, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := make([]dataset.Example, 0, end-start)
			for _, idx := range order[start:end] {
				batch = append(batch, examples[idx])
			}
			x, y, err := m.batchTensors(batch)
			if err != nil {
				return err
			}
			out, err := m.net.Forward(x, true)
			if err != nil {
				return fmt.Errorf("classify: forward: %w", err)
			}
			loss, grad, err := nn.BCEWithLogits(out, y, nil)
			if err != nil {
				return fmt.Errorf("classify: loss: %w", err)
			}
			m.net.ZeroGrads()
			if _, err := m.net.Backward(grad); err != nil {
				return fmt.Errorf("classify: backward: %w", err)
			}
			if _, err := nn.ClipGradNorm(m.net.Params(), 10); err != nil {
				return err
			}
			if err := opt.Step(m.net.Params()); err != nil {
				return err
			}
			epochLoss += loss
			batches++
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss/float64(batches))
		}
	}
	return nil
}

// Predict returns per-indicator presence probabilities for one image.
func (m *Model) Predict(img *render.Image) ([scene.NumIndicators]float64, error) {
	var out [scene.NumIndicators]float64
	x, _, err := m.batchTensors([]dataset.Example{{Image: img}})
	if err != nil {
		return out, err
	}
	logits, err := m.net.Forward(x, false)
	if err != nil {
		return out, fmt.Errorf("classify: forward: %w", err)
	}
	probs := nn.Sigmoid(logits)
	for k := 0; k < scene.NumIndicators; k++ {
		out[k] = float64(probs.At(0, k))
	}
	return out, nil
}

// Evaluate scores the classifier's thresholded presence predictions.
func (m *Model) Evaluate(examples []dataset.Example, threshold float64) (*metrics.ClassReport, error) {
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("classify: threshold %f outside (0,1)", threshold)
	}
	var report metrics.ClassReport
	for i := range examples {
		probs, err := m.Predict(examples[i].Image)
		if err != nil {
			return nil, fmt.Errorf("classify: evaluate %s: %w", examples[i].ID, err)
		}
		var pred [scene.NumIndicators]bool
		for k := range probs {
			pred[k] = probs[k] >= threshold
		}
		report.AddVector(pred, examples[i].Presence())
	}
	return &report, nil
}

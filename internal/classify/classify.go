// Package classify implements the multi-label scene-classification
// baseline the paper compares against (§IV-B3): prior work (Keralis
// et al.'s VGG-16, Nguyen et al.'s VGG-19, Alirezaei et al.'s ResNet-18)
// predicts image-level indicator presence directly, without localization.
// The model here is a compact CNN with the same backbone family as the
// detector but a presence head — enough to reproduce the paper's finding
// that the detection-based pipeline beats scene classification.
package classify

import (
	"fmt"
	"math/rand"

	"nbhd/internal/dataset"
	"nbhd/internal/metrics"
	"nbhd/internal/nn"
	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/tensor"
)

// Config describes the classifier architecture.
type Config struct {
	// InputSize is the square input resolution; must be divisible by 8.
	// Zero defaults to 64.
	InputSize int
	// Channels are the three backbone stage widths; zero defaults to
	// [8, 16, 32].
	Channels [3]int
	// Seed initializes weights.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.InputSize == 0 {
		c.InputSize = 64
	}
	if c.Channels == [3]int{} {
		c.Channels = [3]int{8, 16, 32}
	}
	return c
}

func (c Config) validate() error {
	if c.InputSize < 16 || c.InputSize%8 != 0 {
		return fmt.Errorf("classify: input size %d must be >= 16 and divisible by 8", c.InputSize)
	}
	for i, ch := range c.Channels {
		if ch <= 0 {
			return fmt.Errorf("classify: stage %d channels %d must be positive", i, ch)
		}
	}
	return nil
}

// Model is the multi-label presence classifier. Training is
// single-threaded; Predict/PredictBatch run on the stateless nn.Infer
// path and are safe for concurrent use (not concurrently with Train).
type Model struct {
	cfg Config
	net *nn.Sequential

	// quantized routes PredictBatch through the int8 inference path
	// (weights prepared by SetQuantized; refreshed after Train).
	quantized bool
}

// SetQuantized switches inference between the f32 and int8 paths.
// Enabling quantizes the current weights, so call it after training or
// loading — never concurrently with inference. Train refreshes the
// quantized weights automatically when the mode is on.
func (m *Model) SetQuantized(enable bool) error {
	if enable {
		if err := m.net.PrepareQuantized(); err != nil {
			return fmt.Errorf("classify: prepare quantized: %w", err)
		}
	}
	m.quantized = enable
	return nil
}

// Quantized reports whether inference runs on the int8 path.
func (m *Model) Quantized() bool { return m.quantized }

// InferCounts exposes the network's f32-vs-quantized dispatch counters
// for serving metrics.
func (m *Model) InferCounts() (f32, quantized uint64) { return m.net.InferCounts() }

// New builds a randomly initialized classifier.
func New(cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var layers []nn.Layer
	in := render.Channels
	for _, out := range cfg.Channels {
		conv, err := nn.NewConv2D(in, out, 3, 1, 1, rng)
		if err != nil {
			return nil, fmt.Errorf("classify: %w", err)
		}
		relu, err := nn.NewLeakyReLU(0.1)
		if err != nil {
			return nil, fmt.Errorf("classify: %w", err)
		}
		pool, err := nn.NewMaxPool2D(2, 0)
		if err != nil {
			return nil, fmt.Errorf("classify: %w", err)
		}
		layers = append(layers, conv, relu, pool)
		in = out
	}
	grid := cfg.InputSize / 8
	head, err := nn.NewLinear(in*grid*grid, scene.NumIndicators, rng)
	if err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	layers = append(layers, head)
	return &Model{cfg: cfg, net: nn.NewSequential(layers...)}, nil
}

// InputSize returns the expected input resolution.
func (m *Model) InputSize() int { return m.cfg.InputSize }

// ParamCount returns the number of trainable scalars.
func (m *Model) ParamCount() int { return m.net.ParamCount() }

// batchInput packs images into a pooled NCHW scratch tensor the caller
// must hand back via tensor.PutScratch.
func (m *Model) batchInput(images []*render.Image) (*tensor.Tensor, error) {
	s := m.cfg.InputSize
	x := tensor.GetScratch(len(images), render.Channels, s, s)
	per := render.Channels * s * s
	for i, img := range images {
		if img.W != s || img.H != s {
			tensor.PutScratch(x)
			return nil, fmt.Errorf("classify: image %d is %dx%d, model expects %dx%d", i, img.W, img.H, s, s)
		}
		copy(x.Data[i*per:(i+1)*per], img.Pix)
	}
	return x, nil
}

// batchTensors packs examples into pooled input and target tensors; both
// go back to the scratch pool after the step.
func (m *Model) batchTensors(batch []dataset.Example, images []*render.Image) (*tensor.Tensor, *tensor.Tensor, error) {
	images = images[:0]
	for i := range batch {
		images = append(images, batch[i].Image)
	}
	x, err := m.batchInput(images)
	if err != nil {
		return nil, nil, err
	}
	y := tensor.GetScratch(len(batch), scene.NumIndicators)
	y.Zero()
	for i := range batch {
		pres := batch[i].Presence()
		for k := 0; k < scene.NumIndicators; k++ {
			if pres[k] {
				y.Set(1, i, k)
			}
		}
	}
	return x, y, nil
}

// TrainConfig holds the classifier's training hyperparameters.
type TrainConfig struct {
	// Epochs defaults to 20 (matching the detector protocol).
	Epochs int
	// BatchSize defaults to 16.
	BatchSize int
	// LearningRate defaults to 2e-3 with Adam.
	LearningRate float64
	// Seed drives shuffling.
	Seed int64
	// Progress receives per-epoch losses.
	Progress func(epoch int, loss float64)
	// Stop, when non-nil, is polled at each epoch boundary; a non-nil
	// return aborts training with that error. Pass ctx.Err to make a
	// long run cancellable without goroutine games.
	Stop func() error
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LearningRate == 0 {
		c.LearningRate = 2e-3
	}
	return c
}

// Train fits the classifier with multi-label binary cross entropy.
func (m *Model) Train(examples []dataset.Example, cfg TrainConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Epochs < 1 || cfg.BatchSize < 1 || cfg.LearningRate <= 0 {
		return fmt.Errorf("classify: invalid training config %+v", cfg)
	}
	if len(examples) == 0 {
		return fmt.Errorf("classify: no training examples")
	}
	opt, err := nn.NewAdam(cfg.LearningRate, 0, 0, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	batch := make([]dataset.Example, 0, cfg.BatchSize)
	images := make([]*render.Image, 0, cfg.BatchSize)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Stop != nil {
			if err := cfg.Stop(); err != nil {
				return fmt.Errorf("classify: training stopped: %w", err)
			}
		}
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch = batch[:0]
			for _, idx := range order[start:end] {
				batch = append(batch, examples[idx])
			}
			loss, err := m.trainStep(batch, images, opt)
			if err != nil {
				return err
			}
			epochLoss += loss
			batches++
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss/float64(batches))
		}
	}
	if m.quantized {
		// Keep the int8 weight copies in sync with the freshly trained
		// f32 weights.
		if err := m.net.PrepareQuantized(); err != nil {
			return fmt.Errorf("classify: refresh quantized weights: %w", err)
		}
	}
	return nil
}

// trainStep runs one optimizer update on a batch; all tensors cycle
// through the scratch pool, keeping steady-state steps allocation-free.
func (m *Model) trainStep(batch []dataset.Example, images []*render.Image, opt nn.Optimizer) (float64, error) {
	x, y, err := m.batchTensors(batch, images)
	if err != nil {
		return 0, err
	}
	release := func() {
		tensor.PutScratch(x)
		tensor.PutScratch(y)
	}
	out, err := m.net.Forward(x, true)
	if err != nil {
		release()
		return 0, fmt.Errorf("classify: forward: %w", err)
	}
	grad := tensor.GetScratch(out.Shape...)
	loss, err := nn.BCEWithLogitsInto(grad, out, y, nil)
	if err != nil {
		release()
		tensor.PutScratch(grad)
		return 0, fmt.Errorf("classify: loss: %w", err)
	}
	m.net.ZeroGrads()
	gradIn, err := m.net.Backward(grad)
	tensor.PutScratch(grad)
	release()
	if err != nil {
		return 0, fmt.Errorf("classify: backward: %w", err)
	}
	tensor.PutScratch(gradIn)
	if _, err := nn.ClipGradNorm(m.net.Params(), 10); err != nil {
		return 0, err
	}
	if err := opt.Step(m.net.Params()); err != nil {
		return 0, err
	}
	return loss, nil
}

// Predict returns per-indicator presence probabilities for one image. It
// is safe for concurrent use.
func (m *Model) Predict(img *render.Image) ([scene.NumIndicators]float64, error) {
	probs, err := m.PredictBatch([]*render.Image{img})
	if err != nil {
		return [scene.NumIndicators]float64{}, err
	}
	return probs[0], nil
}

// PredictBatch returns presence probabilities for several images from
// one batched forward pass — bit-identical to per-image Predict but a
// single GEMM per layer. It runs on the stateless inference path, so
// concurrent calls on one model are safe.
func (m *Model) PredictBatch(images []*render.Image) ([][scene.NumIndicators]float64, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("classify: empty batch")
	}
	x, err := m.batchInput(images)
	if err != nil {
		return nil, err
	}
	var logits *tensor.Tensor
	if m.quantized {
		logits, err = m.net.InferQuantized(x)
	} else {
		logits, err = m.net.Infer(x)
	}
	if err != nil {
		tensor.PutScratch(x)
		return nil, fmt.Errorf("classify: forward: %w", err)
	}
	out := make([][scene.NumIndicators]float64, len(images))
	for i := range images {
		for k := 0; k < scene.NumIndicators; k++ {
			out[i][k] = float64(nn.Sigmoid32(logits.At(i, k)))
		}
	}
	// Infer may return its input unchanged (identity networks), so guard
	// against recycling the same tensor twice.
	if logits != x {
		tensor.PutScratch(logits)
	}
	tensor.PutScratch(x)
	return out, nil
}

// evalBatchSize is the inference batch width used by Evaluate.
const evalBatchSize = 16

// Evaluate scores the classifier's thresholded presence predictions,
// predicting in batches of evalBatchSize; results are bit-identical to
// the per-image sweep.
func (m *Model) Evaluate(examples []dataset.Example, threshold float64) (*metrics.ClassReport, error) {
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("classify: threshold %f outside (0,1)", threshold)
	}
	var report metrics.ClassReport
	imgs := make([]*render.Image, 0, evalBatchSize)
	for start := 0; start < len(examples); start += evalBatchSize {
		end := start + evalBatchSize
		if end > len(examples) {
			end = len(examples)
		}
		imgs = imgs[:0]
		for i := start; i < end; i++ {
			imgs = append(imgs, examples[i].Image)
		}
		probs, err := m.PredictBatch(imgs)
		if err != nil {
			return nil, fmt.Errorf("classify: evaluate batch starting at %s: %w", examples[start].ID, err)
		}
		for k := range probs {
			var pred [scene.NumIndicators]bool
			for j := range probs[k] {
				pred[j] = probs[k][j] >= threshold
			}
			report.AddVector(pred, examples[start+k].Presence())
		}
	}
	return &report, nil
}

package classify

import (
	"testing"

	"nbhd/internal/dataset"
	"nbhd/internal/scene"
)

func examples(t *testing.T, n, size int) []dataset.Example {
	t.Helper()
	st, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: (n + 3) / 4, Seed: 13})
	if err != nil {
		t.Fatalf("BuildStudy: %v", err)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	ex, err := st.RenderExamples(idx, size)
	if err != nil {
		t.Fatalf("RenderExamples: %v", err)
	}
	return ex
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{InputSize: 20}); err == nil {
		t.Error("non-multiple-of-8 size accepted")
	}
	if _, err := New(Config{InputSize: 8}); err == nil {
		t.Error("tiny size accepted")
	}
	if _, err := New(Config{InputSize: 32, Channels: [3]int{0, 8, 8}}); err == nil {
		t.Error("zero channels accepted")
	}
}

func TestDefaults(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.InputSize() != 64 {
		t.Errorf("InputSize = %d", m.InputSize())
	}
	if m.ParamCount() == 0 {
		t.Error("ParamCount = 0")
	}
}

func TestPredictShape(t *testing.T) {
	m, err := New(Config{InputSize: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex := examples(t, 1, 32)
	probs, err := m.Predict(ex[0].Image)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	for k, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("prob[%d] = %f outside [0,1]", k, p)
		}
	}
	// Wrong size rejected.
	bad := examples(t, 1, 16)
	if _, err := m.Predict(bad[0].Image); err == nil {
		t.Error("wrong-size image accepted")
	}
}

func TestTrainValidation(t *testing.T) {
	m, err := New(Config{InputSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Train(nil, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	ex := examples(t, 4, 32)
	if err := m.Train(ex, TrainConfig{Epochs: -1}); err == nil {
		t.Error("negative epochs accepted")
	}
}

func TestTrainLossDecreases(t *testing.T) {
	m, err := New(Config{InputSize: 32, Channels: [3]int{4, 8, 16}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ex := examples(t, 24, 32)
	var losses []float64
	err = m.Train(ex, TrainConfig{
		Epochs:    8,
		BatchSize: 8,
		Seed:      3,
		Progress:  func(_ int, l float64) { losses = append(losses, l) },
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %f -> %f", losses[0], losses[len(losses)-1])
	}
}

func TestTrainThenEvaluateBeatsChance(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	m, err := New(Config{InputSize: 32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ex := examples(t, 80, 32)
	if err := m.Train(ex, TrainConfig{Epochs: 15, BatchSize: 16, Seed: 5}); err != nil {
		t.Fatalf("Train: %v", err)
	}
	report, err := m.Evaluate(ex, 0.5)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	_, _, _, acc := report.Averages()
	if acc < 0.8 {
		t.Errorf("train-set accuracy %.3f, classifier failed to learn", acc)
	}
}

func TestEvaluateValidation(t *testing.T) {
	m, err := New(Config{InputSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	ex := examples(t, 2, 32)
	if _, err := m.Evaluate(ex, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := m.Evaluate(ex, 1); err == nil {
		t.Error("unit threshold accepted")
	}
	rep, err := m.Evaluate(ex, 0.5)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if rep.Of(scene.Sidewalk).Total() != len(ex) {
		t.Error("report does not cover all examples")
	}
}

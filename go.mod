module nbhd

go 1.24

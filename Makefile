# Single source of truth for build/test commands — CI runs these exact
# targets, so passing `make check` locally means passing CI.

GO ?= go

.PHONY: all build test race bench bench-smoke bench-store bench-quant run-experiment serve-smoke fleet-smoke lab-smoke robustness-smoke fmt fmt-check vet godoc-check check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race overhead is ~10-20x; the root integration tests need more than
# the default 10m package timeout on small runners.
race:
	$(GO) test -race -timeout 45m ./...

# Full paper-benchmark sweep (slow; prints every table and figure).
bench:
	$(GO) test -run=NONE -bench=. -benchmem

# Short-form benchmark smoke for CI: proves the harness runs and gives a
# perf trajectory point without the full sweep's cost. Includes the HTTP
# backend sweep against an in-process llmserve (remote evaluation path)
# and the compute-layer microbenchmarks (batched GEMM convolution and the
# zero-allocation training step), with -benchmem so allocation regressions
# in the pooled hot path are visible in CI artifacts.
bench-smoke:
	$(GO) test -run=NONE -bench='MatMul128|HTTPBackend_Sweep|ConvForward|ConvBackward|TrainEpoch|DetectorForward|PredictBatch|Nearest|WarmStart|DegradationOps' -benchtime=1x -benchmem

# Spatial-layer benchmarks on their own: the geo index vs the linear
# scan it replaced, and warm-start store serving vs cold rendering.
# CI tees the output to BENCH_pr6.json, the persistent-store perf
# artifact.
bench-store:
	$(GO) test -run=NONE -bench='BenchmarkNearest|BenchmarkWarmStart' -benchtime=1x -benchmem

# Quantization benchmarks on their own: the GEMM size sweep (packed f32
# vs int8 kernel), the f32-vs-int8 end-to-end inference pairs at
# paper-realistic channel widths, and the accuracy-drift recorder. CI
# tees the output to BENCH_pr7.json, the quantized-inference perf +
# drift artifact.
bench-quant:
	$(GO) test -run=NONE -bench='GEMMSizes' -benchtime=1x -benchmem ./internal/tensor
	$(GO) test -run=NONE -bench='DetectorForward|PredictBatch|TrainEpoch|QuantDrift' -benchtime=1x -benchmem

# Executes the small built-in "smoke" experiment spec end to end
# through the declarative runner (two model sweeps plus their majority
# vote), writes its run artifacts under runs/, and copies the run
# manifest to BENCH_pr4.json — the comparable run record CI uploads for
# every PR. Same spec + seed ⇒ byte-identical sweep report files.
run-experiment:
	$(GO) run ./cmd/llmeval -coords 12 -experiment smoke -run-dir runs
	cp runs/run-smoke/manifest.json BENCH_pr4.json

# Boots the classification gateway in-process with the trained cnn
# backend and replays a Zipf-skewed sweep as concurrent client traffic
# against three gateway variants — dynamic batching (with single-flight
# dedup), batching pinned to size 1, and batching plus the LRU result
# cache — and writes the throughput/latency comparison to
# BENCH_pr5.json, the CI artifact proving coalescing beats the
# batch-size-1 gateway.
serve-smoke:
	$(GO) run ./cmd/nbhdserve -loadgen -coords 12 -cnn-epochs 2 \
		-loadgen-requests 512 -loadgen-concurrency 64 -loadgen-frames 48 \
		-bench-out BENCH_pr5.json

# Boots the multi-replica fleet in-process (consistent-hash router +
# supervisor, one floored vlm backend per replica) and replays the Zipf
# sweep at 1, 2, and 4 replicas, then re-runs it on a 3-replica fleet
# while killing one replica unannounced at the halfway mark. Writes
# BENCH_pr8.json, the CI artifact proving (a) aggregate throughput
# scales with replica count and (b) the kill replay completes with zero
# dropped 200s and bit-identical failover answers — the run errors out
# if either fails.
fleet-smoke:
	$(GO) run ./cmd/nbhdfleet -loadgen -bench-out BENCH_pr8.json

# Runs the lab daemon's self-test in a fresh workspace: a baseline run
# of the builtin smoke spec, a repeat run asserted byte-identical
# against the promoted baseline, and a third run killed between two
# journal appends then resumed after reopening the workspace — the
# resumed run must restore journaled cells, re-run only the missing
# ones, and still diff byte-identical. Writes BENCH_pr9.json, the CI
# artifact recording both guarantees; the target fails if either does.
lab-smoke:
	$(GO) run ./cmd/nbhdlab -smoke -coords 12 -bench-out BENCH_pr9.json

# Runs a reduced robustness matrix end to end through the builtin
# experiment: two world morphologies, the clean and night capture
# conditions, the two supervised backends — every cell checked against
# the accuracy envelope (the run exits non-zero on any cell below its
# floor). Writes BENCH_pr10.json, the CI artifact recording the full
# cell table; run artifacts land under runs/ and are byte-identical for
# the same seed.
robustness-smoke:
	$(GO) run ./cmd/llmeval -coords 8 -seed 0 -experiment robustness \
		-morphology grid,coastal -condition clean,night -matrix-kinds cnn,yolo \
		-train-epochs 1 -run-dir runs -bench-out BENCH_pr10.json

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Every internal package must carry a real package comment ("// Package
# <name> ..." in some file of the package) — the architecture book
# (docs/ARCHITECTURE.md) leans on godoc for per-package detail, so an
# undocumented package is a CI failure, not a style nit.
godoc-check:
	@missing=""; \
	for p in internal/*/; do \
		n=$$(basename $$p); \
		grep -qs "^// Package $$n " $$p*.go || missing="$$missing $$n"; \
	done; \
	if [ -n "$$missing" ]; then \
		echo "internal packages missing a package comment:$$missing"; exit 1; \
	fi

check: fmt-check vet godoc-check build test

// Prompt study: how prompting choices move accuracy, at example scale.
// Reproduces the direction of three of the paper's findings on one small
// corpus: parallel beats sequential prompting (Fig. 4), English beats the
// other prompt languages with a Chinese sidewalk collapse (Fig. 6), and
// temperature barely matters (§IV-C4).
package main

import (
	"fmt"
	"os"

	"nbhd/internal/core"
	"nbhd/internal/prompt"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prompt_study:", err)
		os.Exit(1)
	}
}

func run() error {
	pipe, err := core.NewPipeline(core.Config{Coordinates: 60, Seed: 17})
	if err != nil {
		return err
	}
	profile, err := vlm.ProfileFor(vlm.Gemini15Pro)
	if err != nil {
		return err
	}
	model, err := vlm.NewModel(profile)
	if err != nil {
		return err
	}

	// 1. Prompt structure.
	fmt.Println("prompt structure (Gemini, avg recall):")
	for _, mode := range []prompt.Mode{prompt.Parallel, prompt.Sequential} {
		rep, err := pipe.EvaluateClassifier(model, core.LLMOptions{Mode: mode})
		if err != nil {
			return err
		}
		_, recall, _, _ := rep.Averages()
		fmt.Printf("  %-12s %.3f\n", mode, recall)
	}

	// 2. Prompt language.
	fmt.Println("\nprompt language (Gemini, avg recall / sidewalk recall):")
	for _, lang := range prompt.Languages() {
		rep, err := pipe.EvaluateClassifier(model, core.LLMOptions{Language: lang})
		if err != nil {
			return err
		}
		_, recall, _, _ := rep.Averages()
		fmt.Printf("  %-10s %.3f / %.3f\n", lang, recall, rep.Of(scene.Sidewalk).Recall())
	}

	// 3. Temperature.
	fmt.Println("\ntemperature (Gemini, avg F1):")
	for _, temp := range []float64{0.1, 1.0, 1.5} {
		rep, err := pipe.EvaluateClassifier(model, core.LLMOptions{Temperature: temp})
		if err != nil {
			return err
		}
		_, _, f1, _ := rep.Averages()
		fmt.Printf("  %-6.1f %.3f\n", temp, f1)
	}

	// Show the actual prompt text the study sends.
	order := prompt.PaperOrder()
	text, err := prompt.ParallelPrompt(order[:], prompt.English)
	if err != nil {
		return err
	}
	fmt.Printf("\nthe parallel prompt:\n%s\n", text)
	return nil
}

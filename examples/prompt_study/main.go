// Prompt study: how prompting choices move accuracy, at example scale.
// Reproduces the direction of three of the paper's findings on one small
// corpus: parallel beats sequential prompting (Fig. 4), English beats the
// other prompt languages with a Chinese sidewalk collapse (Fig. 6), and
// temperature barely matters (§IV-C4).
//
// The whole study is one declarative spec — nine sweeps over one corpus
// — executed in a single runner pass over the shared caches.
package main

import (
	"context"
	"fmt"
	"os"

	"nbhd/internal/backend"
	"nbhd/internal/experiment"
	"nbhd/internal/prompt"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "prompt_study:", err)
		os.Exit(1)
	}
}

var temperatures = []float64{0.1, 1.0, 1.5}

func run() error {
	gemini := string(vlm.Gemini15Pro)
	spec := experiment.Spec{
		Name:     "prompt-study",
		Dataset:  experiment.DatasetSpec{Coordinates: 60, Seed: 17},
		Backends: map[string]backend.Spec{gemini: {Kind: "vlm", Model: gemini}},
	}
	sweep := func(name string, opts experiment.OptionsSpec) {
		spec.Sweeps = append(spec.Sweeps, experiment.SweepSpec{
			Name: name, Backends: []string{gemini}, Options: opts,
		})
	}
	for _, mode := range []prompt.Mode{prompt.Parallel, prompt.Sequential} {
		sweep("mode:"+mode.String(), experiment.OptionsSpec{Mode: mode.String()})
	}
	for _, lang := range prompt.Languages() {
		sweep("lang:"+lang.String(), experiment.OptionsSpec{Language: lang.String()})
	}
	for _, temp := range temperatures {
		sweep(fmt.Sprintf("temp:%.1f", temp), experiment.OptionsSpec{Temperature: temp})
	}

	res, err := experiment.NewRunner(experiment.RunnerConfig{}).Run(context.Background(), spec, nil)
	if err != nil {
		return err
	}

	// 1. Prompt structure.
	fmt.Println("prompt structure (Gemini, avg recall):")
	for _, mode := range []prompt.Mode{prompt.Parallel, prompt.Sequential} {
		rep := res.Sweep("mode:" + mode.String()).Report(gemini)
		_, recall, _, _ := rep.Averages()
		fmt.Printf("  %-12s %.3f\n", mode, recall)
	}

	// 2. Prompt language.
	fmt.Println("\nprompt language (Gemini, avg recall / sidewalk recall):")
	for _, lang := range prompt.Languages() {
		rep := res.Sweep("lang:" + lang.String()).Report(gemini)
		_, recall, _, _ := rep.Averages()
		fmt.Printf("  %-10s %.3f / %.3f\n", lang, recall, rep.Of(scene.Sidewalk).Recall())
	}

	// 3. Temperature.
	fmt.Println("\ntemperature (Gemini, avg F1):")
	for _, temp := range temperatures {
		rep := res.Sweep(fmt.Sprintf("temp:%.1f", temp)).Report(gemini)
		_, _, f1, _ := rep.Averages()
		fmt.Printf("  %-6.1f %.3f\n", temp, f1)
	}

	// Show the actual prompt text the study sends.
	order := prompt.PaperOrder()
	text, err := prompt.ParallelPrompt(order[:], prompt.English)
	if err != nil {
		return err
	}
	fmt.Printf("\nthe parallel prompt:\n%s\n", text)
	return nil
}

// Health study: the paper's §I motivation, end to end. Detect indicators
// across a county with the LLM committee, aggregate to tracts, generate
// synthetic health outcomes from the literature's coefficient signs
// (powerlines raise obesity prevalence, sidewalks lower it), and show
// that both the simple correlations and an adjusted OLS regression over
// the *detected* (not ground-truth) indicator rates recover those signs —
// i.e., the pipeline is accurate enough to support the downstream
// epidemiology it is meant to feed.
//
// The detection-and-aggregation half is the built-in "neighborhood"
// experiment spec (committee sweep + heading fusion + tract bucketing)
// run declaratively; the epidemiology on top stays ordinary code over
// the run's tract profiles.
package main

import (
	"context"
	"fmt"
	"os"

	"nbhd/internal/analysis"
	"nbhd/internal/experiment"
	"nbhd/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "health_study:", err)
		os.Exit(1)
	}
}

func run() error {
	spec, err := experiment.Builtin("neighborhood", experiment.BuiltinConfig{Coordinates: 120, Seed: 23})
	if err != nil {
		return err
	}
	spec.Analyses[0].TractFeet = 4000
	fmt.Println("classifying 480 frames with the 3-model committee...")
	runRes, err := experiment.NewRunner(experiment.RunnerConfig{}).Run(context.Background(), spec, nil)
	if err != nil {
		return err
	}
	res := runRes.Analysis("neighborhood").Result
	fmt.Printf("aggregated %d coordinates into %d tracts\n\n", len(res.Locations), len(res.Tracts))

	// Synthetic outcomes from the literature-shaped model.
	health := analysis.DefaultObesityModel(29)
	outcomes, err := health.Generate(res.Tracts)
	if err != nil {
		return err
	}

	fmt.Println("simple correlations (detected indicator rate vs prevalence):")
	assocs, err := analysis.Associations(res.Tracts, outcomes)
	if err != nil {
		return err
	}
	for _, a := range assocs {
		fmt.Printf("  %-18s r = %+.3f\n", a.Indicator.String(), a.Pearson)
	}

	fmt.Println("\nadjusted OLS regression (all indicators jointly):")
	fit, err := analysis.FitRegression(res.Tracts, outcomes)
	if err != nil {
		return err
	}
	for _, ind := range scene.Indicators() {
		fmt.Printf("  %-18s beta = %+.3f\n", ind.String(), fit.Coef[ind.Index()])
	}
	fmt.Printf("  R² = %.3f over %d tracts\n", fit.R2, fit.N)

	plSign := fit.Coef[scene.Powerline.Index()] > 0
	swSign := fit.Coef[scene.Sidewalk.Index()] < 0
	fmt.Println()
	if plSign && swSign {
		fmt.Println("the committee-detected indicators recover the generating model's")
		fmt.Println("signs: powerline exposure positive, sidewalk access negative —")
		fmt.Println("LLM-decoded environments can support neighborhood health analysis.")
	} else {
		fmt.Println("warning: detected indicators did not recover the expected signs;")
		fmt.Println("increase the corpus size or committee accuracy.")
	}
	return nil
}

// Quickstart: an experiment is data. Declare a spec — corpus, named
// backends, one sweep — hand it to the runner, and read the report: the
// whole public API in about ten lines. The same spec serializes to JSON
// (printed below), so this exact run can live in a file, a PR diff, or
// a CI job.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nbhd/internal/backend"
	"nbhd/internal/experiment"
	"nbhd/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// With -store-dir, renders persist between invocations: the first
	// run fills the store, every later run serves frames from disk.
	storeDir := flag.String("store-dir", "", "persistent frame store directory (optional)")
	flag.Parse()

	// The ten lines: declare the experiment, run it, fetch the report.
	spec := experiment.Spec{
		Name:     "quickstart",
		Dataset:  experiment.DatasetSpec{Coordinates: 20, Seed: 7, StoreDir: *storeDir},
		Backends: map[string]backend.Spec{"gemini": {Kind: "vlm", Model: "gemini-1.5-pro"}},
		Sweeps:   []experiment.SweepSpec{{Name: "demo", Backends: []string{"gemini"}}},
	}
	res, err := experiment.NewRunner(experiment.RunnerConfig{}).Run(context.Background(), spec, nil)
	if err != nil {
		return err
	}
	rep := res.Sweep("demo").Report("gemini")

	// The rest is presentation.
	text, err := experiment.MarshalIndentSpec(spec)
	if err != nil {
		return err
	}
	fmt.Printf("the spec, as it would live in a JSON file:\n%s\n", text)

	fmt.Printf("%-18s %9s %9s %9s %9s\n", "indicator", "Precision", "Recall", "F1", "Accuracy")
	for _, ind := range scene.Indicators() {
		c := rep.Of(ind)
		fmt.Printf("%-18s %9.2f %9.2f %9.2f %9.2f\n", ind.String(), c.Precision(), c.Recall(), c.F1(), c.Accuracy())
	}
	p, r, f1, acc := rep.Averages()
	fmt.Printf("%-18s %9.2f %9.2f %9.2f %9.2f\n", "Average", p, r, f1, acc)
	fmt.Printf("\n%d frames classified by a simulated Gemini 1.5 Pro.\n", rep.Of(scene.Sidewalk).Total())
	return nil
}

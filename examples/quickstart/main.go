// Quickstart: generate one synthetic street-view frame, render it, ask a
// simulated LLM about the six environmental indicators, and compare the
// answers against ground truth — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"os"

	"nbhd/internal/geo"
	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A sample point on an urban multilane road, facing along the road.
	point := geo.SamplePoint{
		Coordinate: geo.Coordinate{Lat: 35.99, Lng: -78.90},
		RoadID:     1,
		RoadClass:  geo.RoadMultiLane,
		Urbanicity: 0.85,
		BearingDeg: 0,
	}

	// Ground truth: which indicators the generator placed in the frame.
	gen := scene.NewGenerator(nil)
	frame, err := gen.Generate("quickstart-0000-n", point, geo.HeadingNorth, 7)
	if err != nil {
		return err
	}

	// Pixels: the synthetic stand-in for a Street View photograph.
	img, err := render.Render(frame, render.Config{Width: 128, Height: 128})
	if err != nil {
		return err
	}

	// A simulated LLM, calibrated to the paper's Gemini 1.5 Pro.
	profile, err := vlm.ProfileFor(vlm.Gemini15Pro)
	if err != nil {
		return err
	}
	model, err := vlm.NewModel(profile)
	if err != nil {
		return err
	}

	inds := scene.Indicators()
	answers, err := model.Classify(vlm.Request{Image: img, Indicators: inds[:]})
	if err != nil {
		return err
	}

	truth := frame.Presence()
	fmt.Printf("%-18s %8s %8s\n", "indicator", "truth", "LLM")
	correct := 0
	for i, ind := range inds {
		mark := ""
		if answers[i] == truth[i] {
			correct++
		} else {
			mark = "  <-- wrong"
		}
		fmt.Printf("%-18s %8v %8v%s\n", ind.String(), truth[i], answers[i], mark)
	}
	fmt.Printf("\n%d/%d correct\n", correct, len(inds))
	return nil
}

// LLM ensemble over the wire: start the simulated LLM API service on a
// local port, then execute the built-in Fig. 5 experiment spec against
// it — every model backend in the spec is an HTTP spec, so the whole
// sweep (bounded in-flight requests, retries with jittered backoff
// against injected 429s) and the top-three majority vote run through
// the network stack, driven by the same declarative runner that drives
// the in-process sweeps. With the default lossless image encoding,
// every number matches what the same spec produces locally.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"nbhd/internal/experiment"
	"nbhd/internal/llmserve"
	"nbhd/internal/vlm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "llm_ensemble:", err)
		os.Exit(1)
	}
}

func run() error {
	// Service with mild chaos: 5% of requests get a 429 advertising the
	// default Retry-After: 1.
	srv, err := llmserve.NewBuiltin(llmserve.Config{
		Failures: llmserve.FailureConfig{Prob429: 0.05, Seed: 9},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() { _ = httpSrv.Close() }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("LLM service on %s (5%% injected 429s)\n", baseURL)

	// The paper's Fig. 5 as a spec, pointed at the server: 40
	// coordinates x 4 headings, four remote model sweeps, then the
	// top-three vote — still fully remote, the voting composite fans
	// each frame to its member HTTP backends.
	spec, err := experiment.Builtin("f5", experiment.BuiltinConfig{
		Coordinates: 40,
		Seed:        3,
		BaseURL:     baseURL,
	})
	if err != nil {
		return err
	}
	// The spec is data: tune every HTTP backend's transport for the
	// chaos demo — wider in-flight budget, more retries with a short
	// first backoff, and a 50ms cap on honoring the server's
	// Retry-After so the run stays snappy under injected 429s.
	for name, b := range spec.Backends {
		b.MaxInFlight = 8
		b.MaxRetries = 6
		b.BaseBackoffMS = 5
		b.MaxRetryAfterMS = 50
		spec.Backends[name] = b
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := experiment.NewRunner(experiment.RunnerConfig{}).Run(ctx, spec, func(ev experiment.Event) {
		if ev.Kind == experiment.SweepStarted {
			fmt.Printf("sweep %s...\n", ev.Step)
		}
	})
	if err != nil {
		return err
	}

	frames := spec.Dataset.Coordinates * 4
	models := res.Sweep("f5:models")
	for _, id := range vlm.AllModels() {
		_, _, _, acc := models.Report(string(id)).Averages()
		fmt.Printf("%-18s accuracy %.3f (%d frames over HTTP)\n", id, acc, frames)
	}
	voting := res.Sweep("f5:voting").Reports[0]
	_, _, _, votedAcc := voting.Report.Averages()
	fmt.Printf("%-18s accuracy %.3f (committee %v)\n", "majority voting", votedAcc, voting.Members)
	return nil
}

// LLM ensemble over the wire: start the simulated LLM API service on a
// local port, sweep all four models over the corpus through the
// evaluation engine's HTTP backend (bounded in-flight requests, retries
// with jittered backoff against injected 429s), majority-vote the top
// three with a remote voting backend, and print the accuracy ladder —
// Fig. 5 reproduced end-to-end through the network stack. With the
// client's lossless image encoding, every number matches what the same
// sweep produces in-process.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"nbhd/internal/backend"
	"nbhd/internal/core"
	"nbhd/internal/ensemble"
	"nbhd/internal/llmclient"
	"nbhd/internal/llmserve"
	"nbhd/internal/vlm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "llm_ensemble:", err)
		os.Exit(1)
	}
}

func run() error {
	// Corpus: 40 coordinates x 4 headings, with the shared render cache
	// the engine uses for every sweep below.
	pipe, err := core.NewPipeline(core.Config{Coordinates: 40, Seed: 3})
	if err != nil {
		return err
	}

	// Service with mild chaos: 5% of requests get a 429 advertising the
	// default Retry-After: 1.
	srv, err := llmserve.NewBuiltin(llmserve.Config{
		Failures: llmserve.FailureConfig{Prob429: 0.05, Seed: 9},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() { _ = httpSrv.Close() }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("LLM service on %s (5%% injected 429s)\n", baseURL)

	// MaxRetryAfter caps how long we honor the server's pacing so the
	// demo stays snappy under chaos.
	client, err := llmclient.New(llmclient.Config{
		BaseURL:       baseURL,
		MaxRetries:    6,
		BaseBackoff:   5 * time.Millisecond,
		MaxRetryAfter: 50 * time.Millisecond,
		Encoding:      llmclient.EncodeRawF32,
	})
	if err != nil {
		return err
	}
	httpBackend := func(id vlm.ModelID) (backend.Backend, error) {
		return backend.NewHTTP(backend.HTTPConfig{Client: client, Model: id, MaxInFlight: 8})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	ev := pipe.NewEvaluator(core.EvalConfig{})

	// Sweep every model over the corpus through HTTP via the engine.
	backends := make(map[vlm.ModelID]backend.Backend, 4)
	for _, id := range vlm.AllModels() {
		b, err := httpBackend(id)
		if err != nil {
			return err
		}
		backends[id] = b
	}
	reports, err := ev.EvaluateModels(ctx, backends, core.LLMOptions{})
	if err != nil {
		return err
	}
	for _, id := range vlm.AllModels() {
		_, _, _, acc := reports[id].Averages()
		fmt.Printf("%-18s accuracy %.3f (%d frames over HTTP)\n", id, acc, pipe.Study.Len())
	}

	// Select the top three and vote them — still fully remote: the
	// voting backend fans each frame to its member HTTP backends.
	top, err := ensemble.SelectTop(reports, 3)
	if err != nil {
		return err
	}
	committee := make([]vlm.ModelID, len(top))
	members := make([]backend.Backend, len(top))
	for i, s := range top {
		committee[i] = s.ID
		members[i], err = httpBackend(s.ID)
		if err != nil {
			return err
		}
	}
	voting, err := backend.NewVoting("majority voting", members...)
	if err != nil {
		return err
	}
	votedReport, err := ev.EvaluateBackend(ctx, voting, core.LLMOptions{})
	if err != nil {
		return err
	}
	_, _, _, votedAcc := votedReport.Averages()
	fmt.Printf("%-18s accuracy %.3f (committee %v)\n", "majority voting", votedAcc, committee)
	return nil
}

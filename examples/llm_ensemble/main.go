// LLM ensemble over the wire: start the simulated LLM API service on a
// local port, sweep a set of frames through all four models via the HTTP
// client (with retries against injected 429s), majority-vote the top
// three, and print the accuracy ladder — Fig. 5 reproduced end-to-end
// through the network stack.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"nbhd/internal/dataset"
	"nbhd/internal/ensemble"
	"nbhd/internal/llmclient"
	"nbhd/internal/llmserve"
	"nbhd/internal/metrics"
	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "llm_ensemble:", err)
		os.Exit(1)
	}
}

func run() error {
	// Corpus: 40 coordinates x 4 headings.
	study, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: 40, Seed: 3})
	if err != nil {
		return err
	}
	indices := make([]int, study.Len())
	for i := range indices {
		indices[i] = i
	}
	// Render through the shared cache: the corpus rasterizes once no
	// matter how many sweeps (or reruns) consume it.
	cache := dataset.NewRenderCache(study)
	examples, err := cache.Examples(indices, 96)
	if err != nil {
		return err
	}
	images := make([]*render.Image, len(examples))
	for i := range examples {
		images[i] = examples[i].Image
	}

	// Service with mild chaos: 5% of requests get a 429.
	srv, err := llmserve.NewBuiltin(llmserve.Config{
		Failures: llmserve.FailureConfig{Prob429: 0.05, Seed: 9},
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() { _ = httpSrv.Close() }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("LLM service on %s (5%% injected 429s)\n", baseURL)

	client, err := llmclient.New(llmclient.Config{BaseURL: baseURL, MaxRetries: 6, BaseBackoff: 5 * time.Millisecond})
	if err != nil {
		return err
	}

	inds := scene.Indicators()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Sweep every model over the corpus through HTTP.
	perModel := make(map[vlm.ModelID][][]bool, 4)
	reports := make(map[vlm.ModelID]*metrics.ClassReport, 4)
	for _, id := range vlm.AllModels() {
		results, err := client.ClassifyBatch(ctx, id, images, inds[:], llmclient.ClassifyOptions{}, 8)
		if err != nil {
			return err
		}
		answers := make([][]bool, len(results))
		var report metrics.ClassReport
		for i, r := range results {
			if r.Err != nil {
				return fmt.Errorf("%s frame %d: %w", id, i, r.Err)
			}
			answers[i] = r.Answers
			var pred [scene.NumIndicators]bool
			copy(pred[:], r.Answers)
			report.AddVector(pred, study.Frames[i].Scene.Presence())
		}
		perModel[id] = answers
		reports[id] = &report
		_, _, _, acc := report.Averages()
		fmt.Printf("%-18s accuracy %.3f (%d frames over HTTP)\n", id, acc, len(images))
	}

	// Select the top three and vote their stored answers.
	top, err := ensemble.SelectTop(reports, 3)
	if err != nil {
		return err
	}
	committee := make([]vlm.ModelID, len(top))
	for i, s := range top {
		committee[i] = s.ID
	}
	var votedReport metrics.ClassReport
	for i := range images {
		votes := make([][]bool, 0, len(committee))
		for _, id := range committee {
			votes = append(votes, perModel[id][i])
		}
		voted, err := ensemble.Vote(votes)
		if err != nil {
			return err
		}
		var pred [scene.NumIndicators]bool
		copy(pred[:], voted)
		votedReport.AddVector(pred, study.Frames[i].Scene.Presence())
	}
	_, _, _, votedAcc := votedReport.Averages()
	fmt.Printf("%-18s accuracy %.3f (committee %v)\n", "majority voting", votedAcc, committee)
	return nil
}

// County survey: the paper's headline comparison at example scale.
// Build a two-county corpus, train the supervised detector on the
// labeled split, evaluate the majority-voting LLM committee on the same
// frames, and print both accuracy summaries side by side — showing the
// trained detector ahead of the training-free committee, as in Fig. 5.
//
// The two layers coexist: detector training and mAP live on the core
// pipeline (detection metrics are not a classification sweep), while
// the committee evaluation is a declarative experiment spec over the
// same dataset configuration. The runner assembles its own corpus from
// that configuration — generation is deterministic in the seed, so the
// two corpora are identical by value (the runner re-renders its own).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nbhd/internal/core"
	"nbhd/internal/experiment"
	"nbhd/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "county_survey:", err)
		os.Exit(1)
	}
}

func run() error {
	// With -store-dir, both layers share one persistent render corpus:
	// the pipeline renders (or mmaps) each frame once and the experiment
	// runner's corpus warm-starts from the same store.
	storeDir := flag.String("store-dir", "", "persistent frame store directory (optional)")
	flag.Parse()

	dataset := experiment.DatasetSpec{
		Coordinates:       60,
		Seed:              11,
		DetectorInputSize: 48,
		StoreDir:          *storeDir,
	}
	pipe, err := core.NewPipeline(core.Config{
		Coordinates:       dataset.Coordinates,
		Seed:              dataset.Seed,
		DetectorInputSize: dataset.DetectorInputSize,
		StoreDir:          dataset.StoreDir,
	})
	if err != nil {
		return err
	}
	defer func() { _ = pipe.Close() }()
	stats := pipe.Study.Stats()
	fmt.Printf("corpus: %d frames, %d labeled objects\n", stats.Frames, stats.TotalObjects)

	fmt.Println("\ntraining detector (supervised baseline)...")
	baseline, err := pipe.TrainBaseline(core.BaselineOptions{
		Epochs:    12,
		BatchSize: 16,
	})
	if err != nil {
		return err
	}
	_, _, detF1, _ := baseline.Report.Averages()
	fmt.Printf("detector: avg F1 %.3f, mAP50 %.3f (test split)\n", detF1, baseline.MAP50)

	// The store allows one writer at a time: release the pipeline's
	// writer lock before the experiment runner opens the same directory
	// (Close is idempotent, so the deferred call stays safe).
	if err := pipe.Close(); err != nil {
		return err
	}

	fmt.Println("\nevaluating LLM committee (training-free)...")
	spec, err := experiment.Builtin("neighborhood", experiment.BuiltinConfig{
		Coordinates: dataset.Coordinates,
		Seed:        dataset.Seed,
	})
	if err != nil {
		return err
	}
	spec.Dataset = dataset
	spec.Analyses = nil
	spec.Sweeps = []experiment.SweepSpec{{Name: "committee", Backends: []string{"committee"}}}
	res, err := experiment.NewRunner(experiment.RunnerConfig{}).Run(context.Background(), spec, nil)
	if err != nil {
		return err
	}
	report := res.Sweep("committee").Report("committee")
	_, _, _, llmAcc := report.Averages()
	fmt.Printf("committee: avg accuracy %.3f over %d frames\n", llmAcc, pipe.Study.Len())

	fmt.Println("\nper-indicator committee accuracy:")
	for _, ind := range scene.Indicators() {
		fmt.Printf("  %-18s %.3f\n", ind.String(), report.Of(ind).Accuracy())
	}

	fmt.Println("\nconclusion: the supervised detector dominates on its")
	fmt.Println("labeled domain, while the committee achieves usable accuracy")
	fmt.Println("with zero labeling or training effort — the paper's RQ1 answer.")
	return nil
}

// Additional ablation benchmarks beyond the paper's own tables: design
// choices DESIGN.md calls out (perception resolution for the simulated
// LLMs, labeler error rates feeding the supervised pipeline).
package nbhd

import (
	"fmt"
	"testing"

	"nbhd/internal/classify"
	"nbhd/internal/core"
	"nbhd/internal/dataset"
	"nbhd/internal/labelme"
	"nbhd/internal/prompt"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

// BenchmarkAblationPerceptionResolution sweeps the resolution of frames
// sent to the simulated LLMs. The paper sends 640x640 to the real APIs;
// the simulation's perception degrades on thin structures at low
// resolution, mirroring real VLM behavior on small inputs.
func BenchmarkAblationPerceptionResolution(b *testing.B) {
	sizes := []int{48, 96, 128}
	accs := make([]float64, len(sizes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for si, size := range sizes {
			pipe, err := core.NewPipeline(core.Config{Coordinates: 50, Seed: benchSeed, LLMRenderSize: size})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := pipe.EvaluateClassifier(llmModel(b, vlm.Gemini15Pro), core.LLMOptions{})
			if err != nil {
				b.Fatal(err)
			}
			_, _, _, acc := rep.Averages()
			accs[si] = acc
		}
	}
	b.StopTimer()
	fmt.Printf("\nAblation — LLM accuracy vs input resolution:\n")
	for si, size := range sizes {
		fmt.Printf("%4dpx  %.3f\n", size, accs[si])
	}
}

// BenchmarkAblationLabelerError sweeps the human labeler's miss rate and
// measures annotation quality against ground truth — quantifying the §V
// limitation that "human error in labeling training data could impact
// the reliability of the model".
func BenchmarkAblationLabelerError(b *testing.B) {
	missRates := []float64{0, 0.05, 0.15, 0.30}
	type stat struct{ kept, truth int }
	stats := make([]stat, len(missRates))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe, err := core.NewPipeline(core.Config{Coordinates: 50, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		for mi, rate := range missRates {
			labeler, err := labelme.NewLabeler(labelme.LabelerConfig{MissRate: rate, BoxJitter: 0.01, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			kept, truth := 0, 0
			for _, fr := range pipe.Study.Frames {
				rec, err := labeler.Annotate(fr.Scene, 640, 640)
				if err != nil {
					b.Fatal(err)
				}
				kept += len(rec.Shapes)
				truth += len(fr.Scene.Objects)
			}
			stats[mi] = stat{kept: kept, truth: truth}
		}
	}
	b.StopTimer()
	fmt.Printf("\nAblation — labeler miss rate vs annotation coverage:\n")
	fmt.Printf("%9s %9s %9s %9s\n", "miss rate", "labeled", "truth", "coverage")
	for mi, rate := range missRates {
		cov := float64(stats[mi].kept) / float64(stats[mi].truth)
		fmt.Printf("%9.2f %9d %9d %9.3f\n", rate, stats[mi].kept, stats[mi].truth, cov)
	}
}

// BenchmarkComparisonSceneClassifier regenerates the §IV-B3 comparison
// with prior work: the paper's detection pipeline vs the VGG-16/19 and
// ResNet-18 scene-classification approach (here: a multi-label CNN
// predicting presence directly). Both train on the same split with the
// same protocol; the paper reports its detector "generally beats the
// accuracy of the scene classification models used in previous research".
func BenchmarkComparisonSceneClassifier(b *testing.B) {
	const size, epochs = 48, 18
	var detAcc, clsAcc float64
	var detF1, clsF1 float64
	for i := 0; i < b.N; i++ {
		pipe, err := core.NewPipeline(core.Config{Coordinates: 75, Seed: benchSeed, DetectorInputSize: size})
		if err != nil {
			b.Fatal(err)
		}
		res, err := pipe.TrainBaseline(core.BaselineOptions{Epochs: epochs, BatchSize: 16})
		if err != nil {
			b.Fatal(err)
		}
		split, err := pipe.Study.Split(dataset.PaperSplit(), benchSeed+1)
		if err != nil {
			b.Fatal(err)
		}
		train, err := pipe.Study.RenderExamples(split.Train, size)
		if err != nil {
			b.Fatal(err)
		}
		test, err := pipe.Study.RenderExamples(split.Test, size)
		if err != nil {
			b.Fatal(err)
		}
		detRep, err := pipe.DetectorPresenceReport(res.Model, test, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		_, _, detF1, detAcc = detRep.Averages()

		cls, err := classify.New(classify.Config{InputSize: size, Seed: benchSeed + 7})
		if err != nil {
			b.Fatal(err)
		}
		if err := cls.Train(train, classify.TrainConfig{Epochs: epochs, BatchSize: 16, Seed: benchSeed + 8}); err != nil {
			b.Fatal(err)
		}
		clsRep, err := cls.Evaluate(test, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		_, _, clsF1, clsAcc = clsRep.Averages()
	}
	b.StopTimer()
	fmt.Printf("\n§IV-B3 — detection pipeline vs scene-classification prior work (image-level):\n")
	fmt.Printf("%-24s %8s %8s\n", "approach", "avg F1", "avg acc")
	fmt.Printf("%-24s %8.3f %8.3f\n", "detector (ours)", detF1, detAcc)
	fmt.Printf("%-24s %8.3f %8.3f\n", "scene classifier", clsF1, clsAcc)
	fmt.Println("note: on the synthetic substrate image-level presence saturates for")
	fmt.Println("both approaches; the paper's gap comes from real-scene clutter the")
	fmt.Println("substitution does not reproduce. The detector additionally localizes.")
}

// BenchmarkAblationVotingVsBestMember quantifies the voting gain per
// indicator class rather than on the average alone.
func BenchmarkAblationVotingVsBestMember(b *testing.B) {
	pipe, err := core.NewPipeline(core.Config{Coordinates: 60, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	var gemAcc, voteAcc [scene.NumIndicators]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := pipe.EvaluateAllLLMs(core.LLMOptions{})
		if err != nil {
			b.Fatal(err)
		}
		voting, err := pipe.RunMajorityVoting(reports, core.LLMOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for k, ind := range scene.Indicators() {
			gemAcc[k] = reports[vlm.Gemini15Pro].Of(ind).Accuracy()
			voteAcc[k] = voting.Report.Of(ind).Accuracy()
		}
	}
	b.StopTimer()
	fmt.Printf("\nAblation — per-class accuracy, best member vs committee:\n")
	fmt.Printf("%-18s %9s %9s %9s\n", "indicator", "gemini", "voting", "delta")
	for k, ind := range scene.Indicators() {
		fmt.Printf("%-18s %9.3f %9.3f %+9.3f\n", ind.String(), gemAcc[k], voteAcc[k], voteAcc[k]-gemAcc[k])
	}
}

// BenchmarkAblationFewShotLanguage extends Fig. 6 with the paper's §V
// mitigation: in-context examples close part of the Chinese-prompt recall
// gap toward English.
func BenchmarkAblationFewShotLanguage(b *testing.B) {
	pipe, err := core.NewPipeline(core.Config{Coordinates: 60, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	indices := make([]int, pipe.Study.Len())
	for i := range indices {
		indices[i] = i
	}
	examples, err := pipe.Study.RenderExamples(indices, 96)
	if err != nil {
		b.Fatal(err)
	}
	inds := scene.Indicators()
	model := llmModel(b, vlm.Gemini15Pro)
	shots := []int{0, 2, 4, 8}
	recalls := make([]float64, len(shots))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for si, k := range shots {
			tp := make([]int, scene.NumIndicators)
			fn := make([]int, scene.NumIndicators)
			for ei, ex := range examples {
				answers, err := model.Classify(vlm.Request{
					Image:      ex.Image,
					Indicators: inds[:],
					Language:   prompt.Chinese,
					Shots:      k,
				})
				if err != nil {
					b.Fatal(err)
				}
				truth := pipe.Study.Frames[ei].Scene.Presence()
				for ki := range inds {
					if truth[ki] {
						if answers[ki] {
							tp[ki]++
						} else {
							fn[ki]++
						}
					}
				}
			}
			var sum float64
			for ki := range inds {
				if tp[ki]+fn[ki] > 0 {
					sum += float64(tp[ki]) / float64(tp[ki]+fn[ki])
				}
			}
			recalls[si] = sum / 6
		}
	}
	b.StopTimer()
	fmt.Printf("\nAblation — few-shot mitigation of the Chinese prompt gap (§V):\n")
	for si, k := range shots {
		fmt.Printf("%d-shot  avg recall %.3f\n", k, recalls[si])
	}
}

// Spatial-layer benchmarks for the persistent frame store and the geo
// index (the PR-6 artifact, uploaded by CI as BENCH_pr6.json):
//
//   - BenchmarkNearest pits the k-d tree against the linear scan it
//     replaces on a corpus-sized point set. Both sides produce
//     bit-identical results (pinned by the geoindex property suite);
//     the benchmark measures the complexity gap alone.
//   - BenchmarkWarmStart renders a study cold into a frame store, then
//     measures serving the same corpus from a reopened store — the
//     render-once/serve-forever path. The warm side asserts zero
//     re-renders every iteration.
package nbhd

import (
	"math/rand"
	"sort"
	"testing"

	"nbhd/internal/dataset"
	"nbhd/internal/geo"
	"nbhd/internal/geoindex"
	"nbhd/internal/store"
)

// benchGeoEntries builds a study-shaped point set: one entry per
// coordinate of a deterministic corpus, plus query points jittered off
// the same coordinates so queries land inside the indexed region.
func benchGeoEntries(b *testing.B, coords int) ([]geoindex.Entry, []geo.Coordinate) {
	b.Helper()
	st, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: coords, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	entries := make([]geoindex.Entry, 0, st.Len())
	for i, fr := range st.Frames {
		if i%4 != 0 { // one entry per coordinate, not per heading
			continue
		}
		entries = append(entries, geoindex.Entry{Coord: fr.Scene.Point.Coordinate, ID: i})
	}
	rng := rand.New(rand.NewSource(benchSeed + 2))
	queries := make([]geo.Coordinate, 256)
	for i := range queries {
		base := entries[rng.Intn(len(entries))].Coord
		queries[i] = geo.Coordinate{
			Lat: base.Lat + (rng.Float64()-0.5)*0.02,
			Lng: base.Lng + (rng.Float64()-0.5)*0.02,
		}
	}
	return entries, queries
}

// linearKNearest is the scan the index replaced: distance to every
// entry, sort by (distance, ID), keep k.
func linearKNearest(entries []geoindex.Entry, q geo.Coordinate, k int) []geoindex.Result {
	res := make([]geoindex.Result, len(entries))
	for i, e := range entries {
		res[i] = geoindex.Result{Entry: e, DistanceFeet: q.DistanceFeet(e.Coord)}
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].DistanceFeet != res[j].DistanceFeet {
			return res[i].DistanceFeet < res[j].DistanceFeet
		}
		return res[i].ID < res[j].ID
	})
	if k > len(res) {
		k = len(res)
	}
	return res[:k]
}

func BenchmarkNearest(b *testing.B) {
	const k = 8
	entries, queries := benchGeoEntries(b, 512)
	ix := geoindex.Build(entries)

	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hits := ix.KNearest(queries[i%len(queries)], k)
			if len(hits) != k {
				b.Fatalf("got %d hits, want %d", len(hits), k)
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hits := linearKNearest(entries, queries[i%len(queries)], k)
			if len(hits) != k {
				b.Fatalf("got %d hits, want %d", len(hits), k)
			}
		}
	})
}

func BenchmarkWarmStart(b *testing.B) {
	const (
		coords = 16
		size   = 32
	)
	study, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: coords, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("cold_render", func(b *testing.B) {
		// Render the corpus with no store behind the cache: every
		// frame costs a rasterization, the price the store removes.
		for i := 0; i < b.N; i++ {
			cache := dataset.NewRenderCache(study)
			for idx := 0; idx < study.Len(); idx++ {
				if _, err := cache.Example(idx, size); err != nil {
					b.Fatal(err)
				}
			}
			if got := cache.Renders(); got != int64(study.Len()) {
				b.Fatalf("cold cache rendered %d frames, want %d", got, study.Len())
			}
		}
	})

	b.Run("warm_store", func(b *testing.B) {
		dir := b.TempDir()
		fill, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cache := dataset.NewPersistentRenderCache(study, fill)
		for idx := 0; idx < study.Len(); idx++ {
			if _, err := cache.Example(idx, size); err != nil {
				b.Fatal(err)
			}
		}
		if err := fill.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := store.Open(dir, store.Options{ReadOnly: true})
			if err != nil {
				b.Fatal(err)
			}
			warm := dataset.NewPersistentRenderCache(study, st)
			for idx := 0; idx < study.Len(); idx++ {
				if _, err := warm.Example(idx, size); err != nil {
					b.Fatal(err)
				}
			}
			if got := warm.Renders(); got != 0 {
				b.Fatalf("warm start rendered %d frames, want 0", got)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

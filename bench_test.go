// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation section (see DESIGN.md's experiment index). Each benchmark
// regenerates its artifact at reduced-but-faithful scale and prints the
// same rows or series the paper reports; absolute numbers differ (the
// substrate is synthetic) but the shape — who wins, by roughly what
// factor, where the crossovers fall — reproduces the paper.
//
// Run everything:
//
//	go test -bench=. -benchmem
package nbhd

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"nbhd/internal/backend"
	"nbhd/internal/classify"
	"nbhd/internal/core"
	"nbhd/internal/dataset"
	"nbhd/internal/ensemble"
	"nbhd/internal/experiment"
	"nbhd/internal/llmclient"
	"nbhd/internal/llmserve"
	"nbhd/internal/metrics"
	"nbhd/internal/nn"
	"nbhd/internal/prompt"
	"nbhd/internal/render"
	"nbhd/internal/scene"
	"nbhd/internal/tensor"
	"nbhd/internal/vlm"
	"nbhd/internal/yolo"
)

// Reduced-scale knobs. The paper uses 300 coordinates (1,200 frames) and
// 20 epochs at 640px; pure-Go training uses fewer coordinates and smaller
// renders, which preserves every reported comparison.
const (
	benchSeed          = 1
	benchDetectorCoord = 100 // Table I corpus (400 frames)
	benchDetectorSize  = 64
	benchDetectorEpoch = 25
	benchLLMCoord      = 100 // LLM experiment corpus (400 frames)
)

// detectorPipeline builds the corpus used by the detector benchmarks at
// the given input resolution.
func detectorPipeline(b *testing.B, coords, size int) *core.Pipeline {
	b.Helper()
	pipe, err := core.NewPipeline(core.Config{
		Coordinates:       coords,
		Seed:              benchSeed,
		DetectorInputSize: size,
	})
	if err != nil {
		b.Fatal(err)
	}
	return pipe
}

// llmPipeline builds the corpus used by the LLM benchmarks.
func llmPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	pipe, err := core.NewPipeline(core.Config{Coordinates: benchLLMCoord, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	return pipe
}

func llmModel(b *testing.B, id vlm.ModelID) *vlm.Model {
	b.Helper()
	profile, err := vlm.ProfileFor(id)
	if err != nil {
		b.Fatal(err)
	}
	m, err := vlm.NewModel(profile)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func printDetectorTable(title string, res *core.BaselineResult) {
	fmt.Printf("\n%s\n%-18s %9s %9s %9s %9s\n", title, "Label", "Precision", "Recall", "F1", "AP50")
	var pSum, rSum, fSum float64
	for _, ind := range scene.Indicators() {
		c := res.Report.Of(ind)
		fmt.Printf("%-18s %9.3f %9.3f %9.3f %9.3f\n", ind.String(), c.Precision(), c.Recall(), c.F1(), res.AP[ind].AP)
		pSum += c.Precision()
		rSum += c.Recall()
		fSum += c.F1()
	}
	n := float64(scene.NumIndicators)
	fmt.Printf("%-18s %9.3f %9.3f %9.3f %9.3f\n", "Average", pSum/n, rSum/n, fSum/n, res.MAP50)
}

// BenchmarkTable1_YOLOBaseline regenerates Table I: train the detector on
// the 70% split (paper: 20 epochs, batch 16) and report per-class
// precision/recall/F1/mAP50 on the held-out 10%.
func BenchmarkTable1_YOLOBaseline(b *testing.B) {
	var res *core.BaselineResult
	for i := 0; i < b.N; i++ {
		pipe := detectorPipeline(b, benchDetectorCoord, benchDetectorSize)
		var err error
		res, err = pipe.TrainBaseline(core.BaselineOptions{Epochs: benchDetectorEpoch, BatchSize: 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printDetectorTable("Table I — detector baseline (paper avg F1 0.963, mAP50 0.991):", res)
}

// BenchmarkTable2_PromptExamples regenerates Table II: one frame's six
// sequential questions answered by all four models.
func BenchmarkTable2_PromptExamples(b *testing.B) {
	pipe := llmPipeline(b)
	examples, err := pipe.Study.RenderExamples([]int{0}, 96)
	if err != nil {
		b.Fatal(err)
	}
	img := examples[0].Image
	order := prompt.PaperOrder()
	models := make(map[vlm.ModelID]*vlm.Model, 4)
	for _, id := range vlm.AllModels() {
		models[id] = llmModel(b, id)
	}
	answers := make(map[vlm.ModelID][]bool, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range vlm.AllModels() {
			a, err := models[id].Classify(vlm.Request{Image: img, Indicators: order[:], Mode: prompt.Sequential})
			if err != nil {
				b.Fatal(err)
			}
			answers[id] = a
		}
	}
	b.StopTimer()
	// Print ground truth in the same question order as the answers.
	truth := examples[0].Presence()
	ordered := make([]bool, len(order))
	for i, ind := range order {
		ordered[i] = truth[ind.Index()]
	}
	fmt.Printf("\nTable II — example answers (frame %s; questions MR,SR,SW,SL,PL,AP):\n", examples[0].ID)
	fmt.Printf("%-18s %s\n", "ground truth", prompt.FormatAnswers(ordered, prompt.English))
	for _, id := range vlm.AllModels() {
		fmt.Printf("%-18s %s\n", id, prompt.FormatAnswers(answers[id], prompt.English))
	}
}

// BenchmarkFigure2_Augmentation regenerates Fig. 2: baseline vs +flip vs
// +flip+crop per-class F1. The paper finds augmentation does not help and
// hurts directional classes.
func BenchmarkFigure2_Augmentation(b *testing.B) {
	arms := []struct {
		name string
		ops  []dataset.AugmentOp
	}{
		{"baseline", nil},
		{"w/ flipping", dataset.FlippingOps()},
		{"w/ flipping & cropping", dataset.FlippingAndCroppingOps()},
	}
	results := make([]*core.BaselineResult, len(arms))
	for i := 0; i < b.N; i++ {
		for ai, arm := range arms {
			pipe := detectorPipeline(b, 50, 48)
			res, err := pipe.TrainBaseline(core.BaselineOptions{Epochs: 12, BatchSize: 16, Augment: arm.ops})
			if err != nil {
				b.Fatal(err)
			}
			results[ai] = res
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig. 2 — F1 by augmentation arm:\n%-18s", "Indicator")
	for _, arm := range arms {
		fmt.Printf(" %22s", arm.name)
	}
	fmt.Println()
	for _, ind := range scene.Indicators() {
		fmt.Printf("%-18s", ind.Abbrev())
		for ai := range arms {
			fmt.Printf(" %22.3f", results[ai].Report.Of(ind).F1())
		}
		fmt.Println()
	}
}

// BenchmarkFigure3_NoiseSNR regenerates Fig. 3: average F1 of the trained
// detector under Gaussian noise at SNR 5..30 dB. The paper sees >90%
// above 25 dB degrading to ~60% at 5 dB.
func BenchmarkFigure3_NoiseSNR(b *testing.B) {
	type point struct{ snr, f1 float64 }
	var series []point
	for i := 0; i < b.N; i++ {
		pipe := detectorPipeline(b, 75, 48)
		res, err := pipe.TrainBaseline(core.BaselineOptions{Epochs: 18, BatchSize: 16})
		if err != nil {
			b.Fatal(err)
		}
		split, err := pipe.Study.Split(dataset.PaperSplit(), benchSeed+1)
		if err != nil {
			b.Fatal(err)
		}
		test, err := pipe.Study.RenderExamples(split.Test, 48)
		if err != nil {
			b.Fatal(err)
		}
		series = series[:0]
		for _, snr := range dataset.SNRLevels() {
			noisy := dataset.AddNoise(test, snr, benchSeed+3)
			nres, err := pipe.EvaluateDetector(res.Model, noisy)
			if err != nil {
				b.Fatal(err)
			}
			_, _, f1, _ := nres.Report.Averages()
			series = append(series, point{snr: snr, f1: f1})
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig. 3 — F1 vs noise SNR:\n%8s %8s\n", "SNR(dB)", "avg F1")
	for _, p := range series {
		fmt.Printf("%8.0f %8.3f\n", p.snr, p.f1)
	}
}

// BenchmarkFigure4_PromptStrategy regenerates Fig. 4: per-class recall of
// Gemini and ChatGPT under parallel vs sequential prompting (paper:
// parallel 92/83 vs sequential 80/79 average recall).
func BenchmarkFigure4_PromptStrategy(b *testing.B) {
	pipe := llmPipeline(b)
	ids := []vlm.ModelID{vlm.Gemini15Pro, vlm.ChatGPT4oMini}
	type arm struct {
		id   vlm.ModelID
		mode prompt.Mode
	}
	var arms []arm
	for _, id := range ids {
		arms = append(arms, arm{id, prompt.Parallel}, arm{id, prompt.Sequential})
	}
	reports := make(map[arm]*metrics.ClassReport, len(arms))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range arms {
			rep, err := pipe.EvaluateClassifier(llmModel(b, a.id), core.LLMOptions{Mode: a.mode})
			if err != nil {
				b.Fatal(err)
			}
			reports[a] = rep
		}
	}
	b.StopTimer()
	fmt.Println("\nFig. 4 — recall by prompting strategy:")
	for _, id := range ids {
		fmt.Printf("%s:\n%-12s %9s %9s\n", id, "Indicator", "Parallel", "Sequential")
		var pSum, sSum float64
		for _, ind := range scene.Indicators() {
			pr := reports[arm{id, prompt.Parallel}].Of(ind).Recall()
			sr := reports[arm{id, prompt.Sequential}].Of(ind).Recall()
			pSum += pr
			sSum += sr
			fmt.Printf("%-12s %9.2f %9.2f\n", ind.Abbrev(), pr, sr)
		}
		fmt.Printf("%-12s %9.2f %9.2f\n", "Average", pSum/6, sSum/6)
	}
}

// BenchmarkFigure5_MajorityVoting regenerates Fig. 5: the image-level
// accuracy ladder — trained YOLO detector, each of the four LLMs, and the
// top-three majority vote (paper: YOLO ~99, then 84/88/86/84 -> 88.5).
func BenchmarkFigure5_MajorityVoting(b *testing.B) {
	pipe := llmPipeline(b)
	var reports map[vlm.ModelID]*metrics.ClassReport
	var voting *core.VotingResult
	var yoloAcc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The YOLO bar: train on the labeled split, report image-level
		// presence accuracy on the held-out test split.
		detPipe := detectorPipeline(b, 75, 48)
		res, err := detPipe.TrainBaseline(core.BaselineOptions{Epochs: 18, BatchSize: 16})
		if err != nil {
			b.Fatal(err)
		}
		split, err := detPipe.Study.Split(dataset.PaperSplit(), benchSeed+1)
		if err != nil {
			b.Fatal(err)
		}
		test, err := detPipe.Study.RenderExamples(split.Test, 48)
		if err != nil {
			b.Fatal(err)
		}
		detRep, err := detPipe.DetectorPresenceReport(res.Model, test, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		_, _, _, yoloAcc = detRep.Averages()

		reports, err = pipe.EvaluateAllLLMs(core.LLMOptions{})
		if err != nil {
			b.Fatal(err)
		}
		voting, err = pipe.RunMajorityVoting(reports, core.LLMOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println("\nFig. 5 — image-level accuracy (paper: YOLO ~99, ChatGPT 84, Gemini 88, Claude 86, Grok 84, voting 88.5):")
	fmt.Printf("%-18s %6.2f%%\n", "YOLOv11 (ours)", yoloAcc*100)
	for _, id := range vlm.AllModels() {
		_, _, _, acc := reports[id].Averages()
		fmt.Printf("%-18s %6.2f%%\n", id, acc*100)
	}
	_, _, _, acc := voting.Report.Averages()
	fmt.Printf("%-18s %6.2f%%  committee %v\n", "majority voting", acc*100, voting.Committee)
}

// BenchmarkFigure6_Languages regenerates Fig. 6: Gemini per-class recall
// under English, Spanish, Chinese, and Bengali prompts (paper averages
// 89.7/76/69/86 with a Chinese sidewalk collapse to ~1%).
func BenchmarkFigure6_Languages(b *testing.B) {
	pipe := llmPipeline(b)
	reports := make(map[prompt.Language]*metrics.ClassReport, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lang := range prompt.Languages() {
			rep, err := pipe.EvaluateClassifier(llmModel(b, vlm.Gemini15Pro), core.LLMOptions{Language: lang})
			if err != nil {
				b.Fatal(err)
			}
			reports[lang] = rep
		}
	}
	b.StopTimer()
	fmt.Printf("\nFig. 6 — Gemini recall by prompt language:\n%-12s", "Indicator")
	for _, lang := range prompt.Languages() {
		fmt.Printf(" %9s", lang)
	}
	fmt.Println()
	for _, ind := range scene.Indicators() {
		fmt.Printf("%-12s", ind.Abbrev())
		for _, lang := range prompt.Languages() {
			fmt.Printf(" %9.2f", reports[lang].Of(ind).Recall())
		}
		fmt.Println()
	}
	fmt.Printf("%-12s", "Average")
	for _, lang := range prompt.Languages() {
		_, r, _, _ := reports[lang].Averages()
		fmt.Printf(" %9.2f", r)
	}
	fmt.Println()
}

// BenchmarkTables3to6_PerLLM regenerates Tables III-VI: the full
// per-class precision/recall/F1/accuracy table for each of the four
// models under parallel English prompts.
func BenchmarkTables3to6_PerLLM(b *testing.B) {
	pipe := llmPipeline(b)
	var reports map[vlm.ModelID]*metrics.ClassReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		reports, err = pipe.EvaluateAllLLMs(core.LLMOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	titles := map[vlm.ModelID]string{
		vlm.ChatGPT4oMini: "Table III — ChatGPT 4o mini (paper avg: P .66 R .91 F1 .73 Acc .84)",
		vlm.Gemini15Pro:   "Table IV — Gemini 1.5 Pro (paper avg: P .77 R .90 F1 .81 Acc .88)",
		vlm.Grok2:         "Table V — Grok 2 (paper avg: P .75 R .90 F1 .79 Acc .84)",
		vlm.Claude37:      "Table VI — Claude 3.7 (paper avg: P .72 R .90 F1 .78 Acc .86)",
	}
	for _, id := range []vlm.ModelID{vlm.ChatGPT4oMini, vlm.Gemini15Pro, vlm.Grok2, vlm.Claude37} {
		rep := reports[id]
		fmt.Printf("\n%s\n%-18s %9s %9s %9s %9s\n", titles[id], "Label", "Precision", "Recall", "F1", "Accuracy")
		for _, ind := range scene.Indicators() {
			c := rep.Of(ind)
			fmt.Printf("%-18s %9.2f %9.2f %9.2f %9.2f\n", ind.String(), c.Precision(), c.Recall(), c.F1(), c.Accuracy())
		}
		p, r, f1, acc := rep.Averages()
		fmt.Printf("%-18s %9.2f %9.2f %9.2f %9.2f\n", "Average", p, r, f1, acc)
	}
}

// BenchmarkParamTemperature regenerates the §IV-C4 temperature sweep
// (paper: F1 .78/.81/.79 at 0.1/1.0/1.5).
func BenchmarkParamTemperature(b *testing.B) {
	pipe := llmPipeline(b)
	temps := []float64{0.1, vlm.DefaultTemperature, 1.5}
	f1s := make([]float64, len(temps))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ti, temp := range temps {
			rep, err := pipe.EvaluateClassifier(llmModel(b, vlm.Gemini15Pro), core.LLMOptions{Temperature: temp})
			if err != nil {
				b.Fatal(err)
			}
			_, _, f1, _ := rep.Averages()
			f1s[ti] = f1
		}
	}
	b.StopTimer()
	fmt.Printf("\n§IV-C4 — Gemini F1 vs temperature:\n")
	for ti, temp := range temps {
		fmt.Printf("temperature %-6.1f %8.3f\n", temp, f1s[ti])
	}
}

// BenchmarkParamTopP regenerates the §IV-C4 top-p sweep (paper: F1
// .79/.79/.81 at 0.5/0.75/0.95).
func BenchmarkParamTopP(b *testing.B) {
	pipe := llmPipeline(b)
	tops := []float64{0.5, 0.75, vlm.DefaultTopP}
	f1s := make([]float64, len(tops))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ti, topP := range tops {
			rep, err := pipe.EvaluateClassifier(llmModel(b, vlm.Gemini15Pro), core.LLMOptions{TopP: topP})
			if err != nil {
				b.Fatal(err)
			}
			_, _, f1, _ := rep.Averages()
			f1s[ti] = f1
		}
	}
	b.StopTimer()
	fmt.Printf("\n§IV-C4 — Gemini F1 vs top-p:\n")
	for ti, topP := range tops {
		fmt.Printf("top-p %-6.2f %8.3f\n", topP, f1s[ti])
	}
}

// BenchmarkDatasetStats regenerates the §IV-A label counts on the full
// 1,200-frame corpus (paper: SL 206, SW 444, SR 346, MR 505, PL 301,
// AP 125; total 1,927).
func BenchmarkDatasetStats(b *testing.B) {
	var stats dataset.Stats
	for i := 0; i < b.N; i++ {
		st, err := dataset.BuildStudy(dataset.StudyConfig{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		stats = st.Stats()
	}
	b.StopTimer()
	paper := map[scene.Indicator]int{
		scene.Streetlight: 206, scene.Sidewalk: 444, scene.SingleLaneRoad: 346,
		scene.MultilaneRoad: 505, scene.Powerline: 301, scene.Apartment: 125,
	}
	fmt.Printf("\n§IV-A — corpus label counts (1,200 frames):\n%-18s %8s %8s\n", "indicator", "ours", "paper")
	for _, ind := range scene.Indicators() {
		fmt.Printf("%-18s %8d %8d\n", ind.String(), stats.Objects[ind.Index()], paper[ind])
	}
	fmt.Printf("%-18s %8d %8d\n", "total", stats.TotalObjects, 1927)
}

// BenchmarkAblationCommitteeSize extends Fig. 5: accuracy as the voting
// committee grows from one model to all four.
func BenchmarkAblationCommitteeSize(b *testing.B) {
	pipe := llmPipeline(b)
	committees := [][]vlm.ModelID{
		{vlm.Gemini15Pro},
		{vlm.Gemini15Pro, vlm.Claude37, vlm.Grok2},
		{vlm.Gemini15Pro, vlm.Claude37, vlm.Grok2, vlm.ChatGPT4oMini},
	}
	accs := make([]float64, len(committees))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci, ids := range committees {
			models := make([]*vlm.Model, len(ids))
			for mi, id := range ids {
				models[mi] = llmModel(b, id)
			}
			committee, err := ensemble.NewCommittee(models...)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := pipe.EvaluateClassifier(committee, core.LLMOptions{})
			if err != nil {
				b.Fatal(err)
			}
			_, _, _, acc := rep.Averages()
			accs[ci] = acc
		}
	}
	b.StopTimer()
	fmt.Printf("\nAblation — committee size vs accuracy:\n")
	for ci, ids := range committees {
		fmt.Printf("%d models %v: %.3f\n", len(ids), ids, accs[ci])
	}
}

// BenchmarkAblationHeadingFusion extends §V future work: per-frame
// accuracy vs coordinate-level fusion of the four headings.
func BenchmarkAblationHeadingFusion(b *testing.B) {
	pipe := llmPipeline(b)
	model := llmModel(b, vlm.Gemini15Pro)
	inds := scene.Indicators()
	var frameAcc, anyAcc, majAcc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		indices := make([]int, pipe.Study.Len())
		for k := range indices {
			indices[k] = k
		}
		examples, err := pipe.Study.RenderExamples(indices, 96)
		if err != nil {
			b.Fatal(err)
		}
		var frameReport metrics.ClassReport
		anyRight, majRight, fusedTotal := 0, 0, 0
		for start := 0; start+3 < len(examples); start += 4 {
			perHeading := make([][scene.NumIndicators]bool, 0, 4)
			var truthAny [scene.NumIndicators]bool
			for k := 0; k < 4; k++ {
				answers, err := model.Classify(vlm.Request{Image: examples[start+k].Image, Indicators: inds[:]})
				if err != nil {
					b.Fatal(err)
				}
				var pred [scene.NumIndicators]bool
				copy(pred[:], answers)
				truth := pipe.Study.Frames[start+k].Scene.Presence()
				frameReport.AddVector(pred, truth)
				perHeading = append(perHeading, pred)
				for ki := range truth {
					truthAny[ki] = truthAny[ki] || truth[ki]
				}
			}
			anyFused, err := ensemble.FuseHeadings(perHeading, ensemble.FuseAny)
			if err != nil {
				b.Fatal(err)
			}
			majFused, err := ensemble.FuseHeadings(perHeading, ensemble.FuseMajority)
			if err != nil {
				b.Fatal(err)
			}
			for ki := range anyFused {
				if anyFused[ki] == truthAny[ki] {
					anyRight++
				}
				if majFused[ki] == truthAny[ki] {
					majRight++
				}
				fusedTotal++
			}
		}
		_, _, _, frameAcc = frameReport.Averages()
		anyAcc = float64(anyRight) / float64(fusedTotal)
		majAcc = float64(majRight) / float64(fusedTotal)
	}
	b.StopTimer()
	fmt.Printf("\nAblation — multi-frame fusion (§V future work), coordinate-level truth:\n")
	fmt.Printf("per-frame accuracy:           %.3f\n", frameAcc)
	fmt.Printf("any-heading fused accuracy:   %.3f (recall-oriented; inflates FPs)\n", anyAcc)
	fmt.Printf("majority-heading fused:       %.3f\n", majAcc)
}

// Micro-benchmarks for the substrate hot paths.

func BenchmarkRenderFrame96(b *testing.B) {
	pipe := llmPipeline(b)
	fr := pipe.Study.Frames[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := render.Render(fr.Scene, render.Config{Width: 96, Height: 96}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerceive(b *testing.B) {
	pipe := llmPipeline(b)
	examples, err := pipe.Study.RenderExamples([]int{0}, 96)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vlm.Perceive(examples[0].Image); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWideChannels are paper-realistic backbone widths for the
// quantization benchmark pair. The repo's training default ([8 16 32])
// is deliberately tiny for fast CI training, which leaves its GEMMs
// memory-bound and understates what int8 buys; YOLOv11-Nano-class
// backbones run 16-256 channels, where the compute-bound GEMM dominates
// the forward pass and the quantized path's advantage is visible.
var benchWideChannels = [3]int{32, 64, 128}

// BenchmarkDetectorForward pairs the f32 and int8 inference paths on one
// batched detector forward pass (8 frames) at paper-scale widths; the
// int8/f32 ratio is the quantization speedup the serving gate requires.
func BenchmarkDetectorForward(b *testing.B) {
	const batch = 8
	pipe := detectorPipeline(b, 2, benchDetectorSize)
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = i
	}
	examples, err := pipe.Study.RenderExamples(idx, benchDetectorSize)
	if err != nil {
		b.Fatal(err)
	}
	imgs := make([]*render.Image, batch)
	for i := range examples {
		imgs[i] = examples[i].Image
	}
	for _, quant := range []bool{false, true} {
		name := "f32"
		if quant {
			name = "int8"
		}
		b.Run(name, func(b *testing.B) {
			model, err := yolo.New(yolo.Config{InputSize: benchDetectorSize, Channels: benchWideChannels, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			if err := model.SetQuantized(quant); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := model.DetectBatch(imgs, 0.25, 0.45); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkPredictBatch pairs the f32 and int8 paths on the CNN
// baseline's batched presence prediction (8 frames).
func BenchmarkPredictBatch(b *testing.B) {
	const batch = 8
	model, err := classify.New(classify.Config{Channels: benchWideChannels, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	pipe := detectorPipeline(b, 2, model.InputSize())
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = i
	}
	examples, err := pipe.Study.RenderExamples(idx, model.InputSize())
	if err != nil {
		b.Fatal(err)
	}
	imgs := make([]*render.Image, batch)
	for i := range examples {
		imgs[i] = examples[i].Image
	}
	for _, quant := range []bool{false, true} {
		name := "f32"
		if quant {
			name = "int8"
		}
		b.Run(name, func(b *testing.B) {
			if err := model.SetQuantized(quant); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := model.PredictBatch(imgs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkConvForward measures one batched convolution forward pass at
// detector-backbone scale: batch 16, 8->16 channels, 3x3 kernel, 32x32
// spatial. Run with -benchmem: the allocation count is the scorecard for
// the pooled compute layer.
func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	conv, err := nn.NewConv2D(8, 16, 3, 1, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(16, 8, 32, 32)
	x.UniformInit(1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := conv.Forward(x, true)
		if err != nil {
			b.Fatal(err)
		}
		tensor.PutScratch(out)
	}
}

// BenchmarkConvBackward measures one forward+backward convolution step at
// the same scale (backward needs the forward caches, so each iteration
// pays for both; subtract BenchmarkConvForward for the backward share).
func BenchmarkConvBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	conv, err := nn.NewConv2D(8, 16, 3, 1, 1, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.MustNew(16, 8, 32, 32)
	x.UniformInit(1, rng)
	grad := tensor.MustNew(16, 16, 32, 32)
	grad.UniformInit(1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := conv.Forward(x, true)
		if err != nil {
			b.Fatal(err)
		}
		tensor.PutScratch(out)
		gradIn, err := conv.Backward(grad)
		if err != nil {
			b.Fatal(err)
		}
		tensor.PutScratch(gradIn)
	}
}

// BenchmarkTrainEpoch measures one full detector training epoch (70% of
// 100 frames at 48px, batch 16) on a persistent model — the steady-state
// per-epoch cost of the Table I/Fig. 5 benchmarks. Run with -benchmem:
// allocations/op is the headline number for zero-allocation training.
func BenchmarkTrainEpoch(b *testing.B) {
	st, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: 25, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	split, err := st.Split(dataset.PaperSplit(), benchSeed+1)
	if err != nil {
		b.Fatal(err)
	}
	train, err := st.RenderExamples(split.Train, 48)
	if err != nil {
		b.Fatal(err)
	}
	// The int8 variant trains with quantized mode on, so each epoch pays
	// the post-epoch weight re-quantization on top of the f32 backward
	// pass — the steady-state cost of keeping a served quantized model
	// fresh during continued training.
	for _, quant := range []bool{false, true} {
		name := "f32"
		if quant {
			name = "int8"
		}
		b.Run(name, func(b *testing.B) {
			model, err := yolo.New(yolo.Config{InputSize: 48, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			if err := model.SetQuantized(quant); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := model.Train(train, yolo.TrainConfig{Epochs: 1, BatchSize: 16, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuantDrift records the int8 accuracy-drift numbers in the
// benchmark artifact (BENCH_pr7.json): it runs the supervised cnn spec
// once per path — identical corpus, seed, and training — and reports
// the max per-class accuracy drift and the macro-average accuracy drift
// between the f32 and int8 reports. The build-failing envelope for
// these numbers lives in internal/experiment's
// TestQuantizedAccuracyEnvelope; this benchmark is the artifact trail.
func BenchmarkQuantDrift(b *testing.B) {
	run := func(quant bool) *metrics.ClassReport {
		spec, err := experiment.Builtin("cnn", experiment.BuiltinConfig{
			Coordinates: 10, Seed: 9, TrainEpochs: 3, Quantized: quant,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiment.NewRunner(experiment.RunnerConfig{}).Run(context.Background(), spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		return res.Sweep("presence").Report("cnn")
	}
	for i := 0; i < b.N; i++ {
		f32 := run(false)
		int8 := run(true)
		var maxAccDrift float64
		for c := range f32.PerClass {
			if d := math.Abs(f32.PerClass[c].Accuracy() - int8.PerClass[c].Accuracy()); d > maxAccDrift {
				maxAccDrift = d
			}
		}
		_, _, _, fa := f32.Averages()
		_, _, _, qa := int8.Averages()
		b.ReportMetric(maxAccDrift, "max_class_acc_drift")
		b.ReportMetric(math.Abs(fa-qa), "macro_acc_drift")
	}
}

func BenchmarkMatMul128(b *testing.B) {
	a := tensor.MustNew(128, 128)
	c := tensor.MustNew(128, 128)
	for i := range a.Data {
		a.Data[i] = float32(i%13) * 0.1
		c.Data[i] = float32(i%7) * 0.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTTPBackend_Sweep measures the remote evaluation path: one
// model swept over the corpus by the engine through the HTTP backend —
// llmserve in-process, bounded in-flight requests, lossless image
// transport. The comparison point is BenchmarkTables3to6_PerLLM's
// in-process sweeps; the gap is pure serialization + HTTP overhead.
func BenchmarkHTTPBackend_Sweep(b *testing.B) {
	pipe, err := core.NewPipeline(core.Config{Coordinates: 25, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := llmserve.NewBuiltin(llmserve.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := llmclient.New(llmclient.Config{
		BaseURL:     ts.URL,
		BaseBackoff: time.Millisecond,
		Encoding:    llmclient.EncodeRawF32,
	})
	if err != nil {
		b.Fatal(err)
	}
	hb, err := backend.NewHTTP(backend.HTTPConfig{Client: client, Model: vlm.Gemini15Pro, MaxInFlight: 8})
	if err != nil {
		b.Fatal(err)
	}
	ev := pipe.NewEvaluator(core.EvalConfig{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ev.EvaluateBackend(ctx, hb, core.LLMOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			_, _, _, acc := rep.Averages()
			b.ReportMetric(acc, "accuracy")
		}
	}
}

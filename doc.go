// Package nbhd reproduces "Decoding Neighborhood Environments with Large
// Language Models" (DSN 2025) as a pure-Go system: a synthetic
// street-view substrate, a from-scratch convolutional detector standing
// in for the YOLOv11 baseline, calibrated simulations of the four
// commercial vision LLMs behind a real HTTP API, and the evaluation,
// voting, and neighborhood-analysis pipeline on top.
//
// The package itself holds the benchmark harness (bench_test.go): one
// benchmark per table and figure in the paper's evaluation section. The
// library lives under internal/; the runnable tools under cmd/ and
// examples/.
//
// The public face is the declarative experiment layer in
// internal/experiment: an experiment is a JSON-round-trippable Spec
// (dataset + named backend specs + sweeps + analyses) executed by a
// streaming Runner that emits typed progress Events in deterministic
// order and can persist every run as a diffable manifest + report-JSON
// artifact directory (experiment.Store). Backends construct from
// declarative specs through the registry (backend.Register /
// backend.Open); the paper's experiments are built-in specs
// (experiment.Builtin), and a golden test pins the runner's reports
// byte-identical to the legacy Pipeline wrappers.
//
// Evaluation sweeps run on the concurrent engine in internal/core: a
// shared render cache rasterizes each frame once per resolution, a
// shared perception cache extracts features once per frame, and a
// worker-pool Evaluator fans classification out across GOMAXPROCS
// workers with context cancellation — bit-identical to the serial path
// (see README.md for the API and guarantees).
//
// Every classifier family flows into that engine through the pluggable
// backend layer in internal/backend: one Backend interface (batched
// Classify plus capability hints) with adapters for the builtin models,
// committees, remote HTTP models (lossless image transport makes their
// reports bit-identical to local), the YOLO detector's presence
// predictions, and the scene-classification CNN baseline.
//
// The online face is the serving gateway in internal/serve
// (cmd/nbhdserve): a long-lived HTTP classification service over the
// same backend registry, coalescing single-frame requests into dynamic
// micro-batches per (backend, options) key — flushed at the backend's
// preferred batch size or a max-latency timer, with single-flight
// collapse of concurrent identical requests — behind bounded admission
// queues that shed load with 503 + Retry-After (the same contract
// llmserve speaks, so llmclient's retry loop interoperates), an LRU
// result cache, JSON health/metrics endpoints, and graceful drain.
// Coalesced responses are bit-identical to serial single-item
// classification.
//
// Beneath the detector sits the fast NN compute layer
// (internal/tensor + internal/nn): register-blocked parallel GEMM
// kernels, batched im2col convolution (one GEMM per batch), a size-keyed
// scratch pool that makes steady-state training steps allocation-free,
// and a stateless Infer path that lets the engine run detector/CNN
// inference concurrently. Kernel partitioning preserves per-element
// accumulation order, so training curves and every reported metric are
// bit-identical to the reference implementation (see README.md's
// performance section and the golden-curve tests).
package nbhd

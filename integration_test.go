// Cross-module integration tests: the full Fig. 1 pipeline exercised
// through every substrate boundary, including the HTTP services.
package nbhd

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"nbhd/internal/core"
	"nbhd/internal/dataset"
	"nbhd/internal/ensemble"
	"nbhd/internal/geo"
	"nbhd/internal/gsv"
	"nbhd/internal/llmclient"
	"nbhd/internal/llmserve"
	"nbhd/internal/metrics"
	"nbhd/internal/scene"
	"nbhd/internal/vlm"
)

// TestEndToEndOverHTTP drives the complete loop a downstream user would
// run against real services: fetch imagery from the street-view API,
// classify it through the LLM API with injected failures, majority-vote,
// and score against ground truth.
func TestEndToEndOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep in -short mode")
	}
	study, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Street-view service with an API key.
	imgSrv, err := gsv.NewServer(study, gsv.ServerConfig{APIKeys: []string{"test-key"}})
	if err != nil {
		t.Fatal(err)
	}
	imgTS := httptest.NewServer(imgSrv.Handler())
	defer imgTS.Close()
	imgClient, err := gsv.NewClient(gsv.ClientConfig{BaseURL: imgTS.URL, APIKey: "test-key", CacheSize: 128})
	if err != nil {
		t.Fatal(err)
	}

	// LLM service with 5% injected 429s.
	llmSrv, err := llmserve.NewBuiltin(llmserve.Config{Failures: llmserve.FailureConfig{Prob429: 0.05, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	llmTS := httptest.NewServer(llmSrv.Handler())
	defer llmTS.Close()
	llm, err := llmclient.New(llmclient.Config{BaseURL: llmTS.URL, MaxRetries: 8, BaseBackoff: time.Millisecond, MaxRetryAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	inds := scene.Indicators()
	committee := []vlm.ModelID{vlm.Gemini15Pro, vlm.Claude37, vlm.Grok2}

	var report metrics.ClassReport
	for i := range study.Frames {
		fr := &study.Frames[i]
		img, err := imgClient.FetchImage(ctx, fr.Scene.Point.Coordinate, fr.Scene.Heading, 96)
		if err != nil {
			t.Fatalf("fetch frame %d: %v", i, err)
		}
		votes := make([][]bool, 0, len(committee))
		for _, id := range committee {
			answers, err := llm.Classify(ctx, id, img, inds[:], llmclient.ClassifyOptions{})
			if err != nil {
				t.Fatalf("classify frame %d with %s: %v", i, id, err)
			}
			votes = append(votes, answers)
		}
		voted, err := ensemble.Vote(votes)
		if err != nil {
			t.Fatal(err)
		}
		var pred [scene.NumIndicators]bool
		copy(pred[:], voted)
		report.AddVector(pred, fr.Scene.Presence())
	}
	_, _, _, acc := report.Averages()
	if acc < 0.75 {
		t.Errorf("end-to-end committee accuracy %.3f implausibly low", acc)
	}
	// The image fetch path hit the nearest-frame index: every request
	// was for an exact frame coordinate, so the street-view service
	// must have served all of them under the key.
	if imgSrv.Usage("test-key") != study.Len() {
		t.Errorf("street-view usage = %d, want %d", imgSrv.Usage("test-key"), study.Len())
	}
}

// TestDetectorBeatsCommittee asserts the paper's RQ1 ordering at
// integration scale: the trained detector's image-level accuracy on its
// test split exceeds the training-free committee's on the same frames.
func TestDetectorBeatsCommittee(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	pipe, err := core.NewPipeline(core.Config{Coordinates: 60, Seed: 3, DetectorInputSize: 64, LLMRenderSize: 96})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.TrainBaseline(core.BaselineOptions{Epochs: 20, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 5 compares image-level accuracy: convert detections to
	// presence predictions on the detector's test split.
	split, err := pipe.Study.Split(dataset.PaperSplit(), 3+1)
	if err != nil {
		t.Fatal(err)
	}
	test, err := pipe.Study.RenderExamples(split.Test, 64)
	if err != nil {
		t.Fatal(err)
	}
	detRep, err := pipe.DetectorPresenceReport(res.Model, test, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, detAcc := detRep.Averages()

	committee, err := ensemble.PaperCommittee()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pipe.EvaluateClassifier(committee, core.LLMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, llmAcc := rep.Averages()
	if detAcc <= llmAcc {
		t.Errorf("detector accuracy %.3f should beat committee accuracy %.3f (paper RQ1)", detAcc, llmAcc)
	}
}

// TestHeadingConsistency checks a study invariant across the geo/scene
// boundary: the four frames of one coordinate share the sample point and
// road class, so at most one road indicator appears across the group.
func TestHeadingConsistency(t *testing.T) {
	study, err := dataset.BuildStudy(dataset.StudyConfig{Coordinates: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start+3 < study.Len(); start += 4 {
		var single, multi bool
		for k := 0; k < 4; k++ {
			sc := study.Frames[start+k].Scene
			single = single || sc.Has(scene.SingleLaneRoad)
			multi = multi || sc.Has(scene.MultilaneRoad)
			if sc.Point.RoadClass != study.Frames[start].Scene.Point.RoadClass {
				t.Fatalf("frame group at %d mixes road classes", start)
			}
		}
		if single && multi {
			t.Fatalf("coordinate group at %d has both road classes across headings", start)
		}
	}
	// Headings follow the paper's N/E/S/W request order.
	want := geo.CardinalHeadings()
	for start := 0; start+3 < study.Len(); start += 4 {
		for k := 0; k < 4; k++ {
			if study.Frames[start+k].Scene.Heading != want[k] {
				t.Fatalf("frame %d heading %v, want %v", start+k, study.Frames[start+k].Scene.Heading, want[k])
			}
		}
	}
}
